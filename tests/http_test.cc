// Tests for the reusable loopback HTTP core (common/http/http.h):
// routing (exact match, 404, 405 + Allow), query-param decoding, POST
// bodies (round-trip, 413 over the cap, Expect: 100-continue), protocol
// errors (malformed request line, chunked transfer → 501), concurrent
// requests across worker threads, prompt stop with an open connection,
// the capped blocking client, and W3C trace context: strict traceparent
// parsing (hostile headers mint fresh, never 500, never propagate),
// request/response trace echo, request-id hygiene, and the per-request
// observer hook.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/http/http.h"

namespace xmlproj {
namespace {

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string RawRequest(uint16_t port, const std::string& request) {
  int fd = ConnectTo(port);
  if (fd < 0) return "";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// A server with an echo route and a greeting route, started on an
// ephemeral port.
class HttpTest : public ::testing::Test {
 protected:
  void StartServer(HttpServerOptions options = {}) {
    server_.Handle("GET", "/hello", [](const HttpRequest& request) {
      std::string who = request.QueryParam("who");
      return TextResponse(200, "hello " + (who.empty() ? "world" : who));
    });
    server_.Handle("POST", "/echo", [](const HttpRequest& request) {
      HttpResponse response;
      response.content_type = std::string(request.Header("content-type"));
      response.body = request.body;
      return response;
    });
    std::string error;
    ASSERT_TRUE(server_.Start(options, &error)) << error;
  }

  HttpServer server_;
};

TEST_F(HttpTest, RoutesAndQueryParams) {
  StartServer();
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/hello", {}, {}, &result));
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "hello world");

  // Percent-decoding and '+' decoding in query values.
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/hello?who=big%20spender+x",
                       {}, {}, &result));
  EXPECT_EQ(result.body, "hello big spender x");
}

TEST_F(HttpTest, PostBodyRoundTrip) {
  StartServer();
  std::string body(100000, 'x');
  body[12345] = '\0';  // binary-safe
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(server_.port(), "POST", "/echo", body,
                       "application/octet-stream", &result));
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, body);
  EXPECT_EQ(result.Header("content-type"), "application/octet-stream");
}

TEST_F(HttpTest, UnknownPathIs404) {
  StartServer();
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/nope", {}, {}, &result));
  EXPECT_EQ(result.status, 404);
}

TEST_F(HttpTest, WrongMethodIs405WithAllow) {
  StartServer();
  std::string response =
      RawRequest(server_.port(), "DELETE /echo HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("405"), std::string::npos);
  EXPECT_NE(response.find("Allow: POST"), std::string::npos);
}

TEST_F(HttpTest, MalformedRequestLineIs400) {
  StartServer();
  std::string response = RawRequest(server_.port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(HttpTest, ChunkedTransferIs501) {
  StartServer();
  std::string response = RawRequest(
      server_.port(),
      "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_NE(response.find("501"), std::string::npos);
}

TEST_F(HttpTest, BodyOverCapIs413BeforeBodyRead) {
  HttpServerOptions options;
  options.max_body_bytes = 1024;
  StartServer(options);
  // Declare 1 MiB but never send it: the cap must trip on the declared
  // Content-Length alone.
  std::string response = RawRequest(
      server_.port(),
      "POST /echo HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n");
  EXPECT_NE(response.find("413"), std::string::npos);
}

TEST_F(HttpTest, ExpectContinueIsHonored) {
  StartServer();
  int fd = ConnectTo(server_.port());
  ASSERT_GE(fd, 0);
  std::string head =
      "POST /echo HTTP/1.1\r\nContent-Length: 4\r\n"
      "Expect: 100-continue\r\n\r\n";
  ASSERT_EQ(::send(fd, head.data(), head.size(), 0),
            static_cast<ssize_t>(head.size()));
  // The interim response must arrive before we send the body.
  char buf[256];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  ASSERT_GT(n, 0);
  EXPECT_NE(std::string(buf, static_cast<size_t>(n)).find("100 Continue"),
            std::string::npos);
  ASSERT_EQ(::send(fd, "ping", 4, 0), 4);
  std::string response;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("ping"), std::string::npos);
}

TEST_F(HttpTest, ConcurrentRequestsAcrossWorkers) {
  HttpServerOptions options;
  options.worker_threads = 4;
  StartServer(options);
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &ok] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        std::string body = "t" + std::to_string(t) + "i" + std::to_string(i);
        HttpClientResult result;
        if (HttpCall(server_.port(), "POST", "/echo", body, "text/plain",
                     &result) &&
            result.status == 200 && result.body == body) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kThreads * kRequestsPerThread);
  EXPECT_EQ(server_.requests_served(), kThreads * kRequestsPerThread);
}

TEST_F(HttpTest, StopIsPromptWithOpenConnection) {
  StartServer();
  // Open a connection and send nothing: a worker is parked in a socket
  // wait on it.
  int fd = ConnectTo(server_.port());
  ASSERT_GE(fd, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto start = std::chrono::steady_clock::now();
  server_.Stop();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ::close(fd);
  // The self-pipe wakes every wait immediately; the bound is generous
  // for CI but far below any poll-interval floor.
  EXPECT_LT(elapsed.count(), 500);
  EXPECT_FALSE(server_.running());
}

TEST_F(HttpTest, ClientResponseCapFailsCleanly) {
  server_.Handle("GET", "/big", [](const HttpRequest&) {
    return TextResponse(200, std::string(1 << 20, 'b'));
  });
  std::string error;
  ASSERT_TRUE(server_.Start({}, &error)) << error;
  HttpClientOptions options;
  options.max_response_bytes = 1024;
  HttpClientResult result;
  EXPECT_FALSE(HttpCall(server_.port(), "GET", "/big", {}, {}, &result,
                        options, &error));
  EXPECT_NE(error.find("response"), std::string::npos) << error;
}

TEST_F(HttpTest, ClientTimesOutOnSilentServer) {
  // A bare listening socket that never accepts data exchange: the
  // client must give up by its deadline, not hang.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  HttpClientOptions options;
  options.timeout_ms = 200;
  HttpClientResult result;
  std::string error;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(HttpCall(ntohs(addr.sin_port), "GET", "/", {}, {}, &result,
                        options, &error));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 2000);
  ::close(fd);
}

// --------------------------------------------------------------------
// W3C trace context.

constexpr char kGoodTraceparent[] =
    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";

bool IsLowerHexString(const std::string& s) {
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return !s.empty();
}

TEST(TraceparentTest, ParsesTheCanonicalHeader) {
  TraceContext context;
  ASSERT_TRUE(ParseTraceparent(kGoodTraceparent, &context));
  EXPECT_EQ(context.trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
  // The header's span id is the *caller's* span: it lands in parent_id,
  // and span_id stays empty for the receiver to mint.
  EXPECT_EQ(context.parent_id, "00f067aa0ba902b7");
  EXPECT_TRUE(context.span_id.empty());
  EXPECT_TRUE(context.sampled);

  TraceContext unsampled;
  ASSERT_TRUE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", &unsampled));
  EXPECT_FALSE(unsampled.sampled);
}

TEST(TraceparentTest, RejectsHostileHeadersWithoutTouchingOut) {
  const char* hostile[] = {
      "",
      "garbage",
      // Wrong version: unknown and the reserved "ff".
      "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      // Short / long trace id.
      "00-4bf92f3577b34da6-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736ab-00f067aa0ba902b7-01",
      // Short span id.
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa-01",
      // All-zero ids are explicitly invalid in the spec.
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
      // Uppercase hex is a violation, not a variant.
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
      // Oversized: one trailing byte past the 55.
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",
      // Wrong separators.
      "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01",
      // Missing flags field.
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
  };
  for (const char* header : hostile) {
    TraceContext context;
    context.trace_id = "sentinel";
    EXPECT_FALSE(ParseTraceparent(header, &context)) << header;
    EXPECT_EQ(context.trace_id, "sentinel") << header;
  }
}

TEST(TraceparentTest, MintAndFormatRoundTrip) {
  TraceContext minted = MintTraceContext();
  EXPECT_EQ(minted.trace_id.size(), 32u);
  EXPECT_EQ(minted.span_id.size(), 16u);
  EXPECT_TRUE(IsLowerHexString(minted.trace_id));
  EXPECT_TRUE(IsLowerHexString(minted.span_id));
  EXPECT_NE(minted.trace_id, std::string(32, '0'));
  EXPECT_NE(MintTraceId(), MintTraceId());

  std::string header = FormatTraceparent(minted);
  EXPECT_EQ(header.size(), 55u);
  TraceContext parsed;
  ASSERT_TRUE(ParseTraceparent(header, &parsed));
  EXPECT_EQ(parsed.trace_id, minted.trace_id);
  EXPECT_EQ(parsed.parent_id, minted.span_id);
}

TEST_F(HttpTest, ValidTraceparentIsContinuedNotCopied) {
  StartServer();
  HttpClientOptions options;
  options.traceparent = kGoodTraceparent;
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/hello", {}, {}, &result,
                       options));
  EXPECT_EQ(result.status, 200);

  TraceContext echoed;
  ASSERT_TRUE(
      ParseTraceparent(result.Header("traceparent"), &echoed));
  // Same trace, new span: the response's span id is the server's, not a
  // copy of ours.
  EXPECT_EQ(echoed.trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_NE(echoed.parent_id, "00f067aa0ba902b7");
  // Without a client x-request-id, the request id is the server span.
  EXPECT_EQ(result.Header("x-request-id"), echoed.parent_id);
}

TEST_F(HttpTest, HostileTraceparentMintsFreshAndNever500s) {
  StartServer();
  const char* hostile[] = {
      "00-00000000000000000000000000000000-0000000000000000-01",
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01",
      "zz-not-a-trace-at-all",
  };
  for (const char* header : hostile) {
    std::string response = RawRequest(
        server_.port(), std::string("GET /hello HTTP/1.1\r\ntraceparent: ") +
                            header + "\r\n\r\n");
    // Hostile telemetry must not affect the request outcome...
    EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << header;
    // ...and must not echo back: the response carries a fresh, valid,
    // unrelated context.
    size_t at = response.find("traceparent: ");
    ASSERT_NE(at, std::string::npos) << header;
    std::string echoed = response.substr(at + 13, 55);
    TraceContext context;
    ASSERT_TRUE(ParseTraceparent(echoed, &context)) << echoed;
    EXPECT_EQ(response.find("00000000000000000000000000000000"),
              std::string::npos)
        << header;
  }
  // The oversized case: 4 KiB of traceparent must not break parsing.
  std::string big(4096, 'a');
  std::string response = RawRequest(
      server_.port(),
      "GET /hello HTTP/1.1\r\ntraceparent: " + big + "\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
}

TEST_F(HttpTest, RequestIdIsEchoedWhenSaneReplacedWhenNot) {
  StartServer();
  std::string response = RawRequest(
      server_.port(),
      "GET /hello HTTP/1.1\r\nX-Request-Id: req-42.alpha_7\r\n\r\n");
  EXPECT_NE(response.find("X-Request-Id: req-42.alpha_7"), std::string::npos);

  // Hostile ids (header-injection bytes, oversized) are replaced by the
  // server's span id, never echoed.
  std::string hostile = RawRequest(
      server_.port(),
      "GET /hello HTTP/1.1\r\nX-Request-Id: evil id\twith spaces\r\n\r\n");
  EXPECT_EQ(hostile.find("evil"), std::string::npos);
  EXPECT_NE(hostile.find("X-Request-Id: "), std::string::npos);

  std::string oversized = RawRequest(
      server_.port(), "GET /hello HTTP/1.1\r\nX-Request-Id: " +
                          std::string(200, 'a') + "\r\n\r\n");
  EXPECT_EQ(oversized.find(std::string(200, 'a')), std::string::npos);
  EXPECT_NE(oversized.find("X-Request-Id: "), std::string::npos);
}

TEST_F(HttpTest, ErrorResponsesCarryTheTraceContextToo) {
  StartServer();
  HttpClientOptions options;
  options.traceparent = kGoodTraceparent;
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/nope", {}, {}, &result,
                       options));
  EXPECT_EQ(result.status, 404);
  TraceContext echoed;
  ASSERT_TRUE(ParseTraceparent(result.Header("traceparent"), &echoed));
  EXPECT_EQ(echoed.trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_FALSE(result.Header("x-request-id").empty());
}

TEST_F(HttpTest, ObserverSeesEveryRequestWithItsTrace) {
  std::mutex mu;
  std::vector<std::string> seen;  // "path status trace_id"
  server_.SetObserver([&](const HttpRequest& request,
                          const HttpResponse& response, uint64_t start_ns,
                          uint64_t duration_ns) {
    EXPECT_GT(start_ns, 0u);
    EXPECT_TRUE(request.trace.valid());
    EXPECT_EQ(request.trace.span_id.size(), 16u);
    (void)duration_ns;  // may be 0 on a coarse clock; no assertion
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(request.path + " " + std::to_string(response.status) +
                   " " + request.trace.trace_id);
  });
  StartServer();

  HttpClientOptions options;
  options.traceparent = kGoodTraceparent;
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/hello", {}, {}, &result,
                       options));
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/missing", {}, {}, &result));

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "/hello 200 4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(seen[1].substr(0, 13), "/missing 404 ");
}

TEST_F(HttpTest, StartIsRetriableAfterPortConflict) {
  StartServer();
  HttpServer second;
  second.Handle("GET", "/x", [](const HttpRequest&) {
    return TextResponse(200, "x");
  });
  HttpServerOptions conflicting;
  conflicting.port = server_.port();
  std::string error;
  EXPECT_FALSE(second.Start(conflicting, &error));
  EXPECT_FALSE(error.empty());
  // Retry on a free port succeeds and routes are intact (not
  // double-registered).
  ASSERT_TRUE(second.Start({}, &error)) << error;
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(second.port(), "GET", "/x", {}, {}, &result));
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "x");
}

}  // namespace
}  // namespace xmlproj
