// Tests for the reusable loopback HTTP core (common/http/http.h):
// routing (exact match, 404, 405 + Allow), query-param decoding, POST
// bodies (round-trip, 413 over the cap, Expect: 100-continue), protocol
// errors (malformed request line, chunked transfer → 501), concurrent
// requests across worker threads, prompt stop with an open connection,
// and the capped blocking client.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/http/http.h"

namespace xmlproj {
namespace {

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string RawRequest(uint16_t port, const std::string& request) {
  int fd = ConnectTo(port);
  if (fd < 0) return "";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// A server with an echo route and a greeting route, started on an
// ephemeral port.
class HttpTest : public ::testing::Test {
 protected:
  void StartServer(HttpServerOptions options = {}) {
    server_.Handle("GET", "/hello", [](const HttpRequest& request) {
      std::string who = request.QueryParam("who");
      return TextResponse(200, "hello " + (who.empty() ? "world" : who));
    });
    server_.Handle("POST", "/echo", [](const HttpRequest& request) {
      HttpResponse response;
      response.content_type = std::string(request.Header("content-type"));
      response.body = request.body;
      return response;
    });
    std::string error;
    ASSERT_TRUE(server_.Start(options, &error)) << error;
  }

  HttpServer server_;
};

TEST_F(HttpTest, RoutesAndQueryParams) {
  StartServer();
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/hello", {}, {}, &result));
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "hello world");

  // Percent-decoding and '+' decoding in query values.
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/hello?who=big%20spender+x",
                       {}, {}, &result));
  EXPECT_EQ(result.body, "hello big spender x");
}

TEST_F(HttpTest, PostBodyRoundTrip) {
  StartServer();
  std::string body(100000, 'x');
  body[12345] = '\0';  // binary-safe
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(server_.port(), "POST", "/echo", body,
                       "application/octet-stream", &result));
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, body);
  EXPECT_EQ(result.Header("content-type"), "application/octet-stream");
}

TEST_F(HttpTest, UnknownPathIs404) {
  StartServer();
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(server_.port(), "GET", "/nope", {}, {}, &result));
  EXPECT_EQ(result.status, 404);
}

TEST_F(HttpTest, WrongMethodIs405WithAllow) {
  StartServer();
  std::string response =
      RawRequest(server_.port(), "DELETE /echo HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("405"), std::string::npos);
  EXPECT_NE(response.find("Allow: POST"), std::string::npos);
}

TEST_F(HttpTest, MalformedRequestLineIs400) {
  StartServer();
  std::string response = RawRequest(server_.port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(HttpTest, ChunkedTransferIs501) {
  StartServer();
  std::string response = RawRequest(
      server_.port(),
      "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_NE(response.find("501"), std::string::npos);
}

TEST_F(HttpTest, BodyOverCapIs413BeforeBodyRead) {
  HttpServerOptions options;
  options.max_body_bytes = 1024;
  StartServer(options);
  // Declare 1 MiB but never send it: the cap must trip on the declared
  // Content-Length alone.
  std::string response = RawRequest(
      server_.port(),
      "POST /echo HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n");
  EXPECT_NE(response.find("413"), std::string::npos);
}

TEST_F(HttpTest, ExpectContinueIsHonored) {
  StartServer();
  int fd = ConnectTo(server_.port());
  ASSERT_GE(fd, 0);
  std::string head =
      "POST /echo HTTP/1.1\r\nContent-Length: 4\r\n"
      "Expect: 100-continue\r\n\r\n";
  ASSERT_EQ(::send(fd, head.data(), head.size(), 0),
            static_cast<ssize_t>(head.size()));
  // The interim response must arrive before we send the body.
  char buf[256];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  ASSERT_GT(n, 0);
  EXPECT_NE(std::string(buf, static_cast<size_t>(n)).find("100 Continue"),
            std::string::npos);
  ASSERT_EQ(::send(fd, "ping", 4, 0), 4);
  std::string response;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("ping"), std::string::npos);
}

TEST_F(HttpTest, ConcurrentRequestsAcrossWorkers) {
  HttpServerOptions options;
  options.worker_threads = 4;
  StartServer(options);
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &ok] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        std::string body = "t" + std::to_string(t) + "i" + std::to_string(i);
        HttpClientResult result;
        if (HttpCall(server_.port(), "POST", "/echo", body, "text/plain",
                     &result) &&
            result.status == 200 && result.body == body) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kThreads * kRequestsPerThread);
  EXPECT_EQ(server_.requests_served(), kThreads * kRequestsPerThread);
}

TEST_F(HttpTest, StopIsPromptWithOpenConnection) {
  StartServer();
  // Open a connection and send nothing: a worker is parked in a socket
  // wait on it.
  int fd = ConnectTo(server_.port());
  ASSERT_GE(fd, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto start = std::chrono::steady_clock::now();
  server_.Stop();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ::close(fd);
  // The self-pipe wakes every wait immediately; the bound is generous
  // for CI but far below any poll-interval floor.
  EXPECT_LT(elapsed.count(), 500);
  EXPECT_FALSE(server_.running());
}

TEST_F(HttpTest, ClientResponseCapFailsCleanly) {
  server_.Handle("GET", "/big", [](const HttpRequest&) {
    return TextResponse(200, std::string(1 << 20, 'b'));
  });
  std::string error;
  ASSERT_TRUE(server_.Start({}, &error)) << error;
  HttpClientOptions options;
  options.max_response_bytes = 1024;
  HttpClientResult result;
  EXPECT_FALSE(HttpCall(server_.port(), "GET", "/big", {}, {}, &result,
                        options, &error));
  EXPECT_NE(error.find("response"), std::string::npos) << error;
}

TEST_F(HttpTest, ClientTimesOutOnSilentServer) {
  // A bare listening socket that never accepts data exchange: the
  // client must give up by its deadline, not hang.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  HttpClientOptions options;
  options.timeout_ms = 200;
  HttpClientResult result;
  std::string error;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(HttpCall(ntohs(addr.sin_port), "GET", "/", {}, {}, &result,
                        options, &error));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 2000);
  ::close(fd);
}

TEST_F(HttpTest, StartIsRetriableAfterPortConflict) {
  StartServer();
  HttpServer second;
  second.Handle("GET", "/x", [](const HttpRequest&) {
    return TextResponse(200, "x");
  });
  HttpServerOptions conflicting;
  conflicting.port = server_.port();
  std::string error;
  EXPECT_FALSE(second.Start(conflicting, &error));
  EXPECT_FALSE(error.empty());
  // Retry on a free port succeeds and routes are intact (not
  // double-registered).
  ASSERT_TRUE(second.Start({}, &error)) << error;
  HttpClientResult result;
  ASSERT_TRUE(HttpCall(second.port(), "GET", "/x", {}, {}, &result));
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "x");
}

}  // namespace
}  // namespace xmlproj
