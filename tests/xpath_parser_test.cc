#include "xpath/parser.h"

#include <gtest/gtest.h>

namespace xmlproj {
namespace {

std::string Reparse(std::string_view text) {
  auto result = ParseXPathExpr(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  if (!result.ok()) return "<error>";
  return ToString(**result);
}

TEST(XPathParser, ExplicitAxes) {
  EXPECT_EQ("child::a/descendant::b", Reparse("child::a/descendant::b"));
  EXPECT_EQ("parent::node()/ancestor::a",
            Reparse("parent::node()/ancestor::a"));
  EXPECT_EQ("following-sibling::a/preceding::b",
            Reparse("following-sibling::a/preceding::b"));
}

TEST(XPathParser, Abbreviations) {
  EXPECT_EQ("child::a", Reparse("a"));
  EXPECT_EQ("/child::a/child::b", Reparse("/a/b"));
  EXPECT_EQ("/descendant-or-self::node()/child::a", Reparse("//a"));
  EXPECT_EQ("child::a/descendant-or-self::node()/child::b",
            Reparse("a//b"));
  EXPECT_EQ("self::node()", Reparse("."));
  EXPECT_EQ("parent::node()", Reparse(".."));
  EXPECT_EQ("attribute::id", Reparse("@id"));
  EXPECT_EQ("child::*", Reparse("*"));
}

TEST(XPathParser, BareNodeTextAreElementNames) {
  // Node type tests require '()'; bare names are element tests (XMark has
  // elements literally named "text").
  EXPECT_EQ("descendant::node()/self::a",
            Reparse("descendant::node()/self::a"));
  EXPECT_EQ("child::text()", Reparse("child::text()"));
  EXPECT_EQ("child::text", Reparse("child::text"));
  EXPECT_EQ("child::node", Reparse("node"));
}

TEST(XPathParser, Predicates) {
  EXPECT_EQ("child::a[child::b]", Reparse("a[b]"));
  EXPECT_EQ("child::a[(child::b or child::c)]", Reparse("a[b or c]"));
  EXPECT_EQ("child::a[(self::node() = 'x')]", Reparse("a[. = 'x']"));
  EXPECT_EQ("child::a[1][(position() != last())]",
            Reparse("a[1][position() != last()]"));
}

TEST(XPathParser, PaperRunningExample) {
  // Q from §3: /descendant::author/child::text[self::node = "Dante"]
  //            /parent::node/parent::node/child::title
  const char* q =
      "/descendant::author/child::text()[self::node() = \"Dante\"]"
      "/parent::node()/parent::node()/child::title";
  EXPECT_EQ(
      "/descendant::author/child::text()[(self::node() = 'Dante')]"
      "/parent::node()/parent::node()/child::title",
      Reparse(q));
}

TEST(XPathParser, OperatorsAndPrecedence) {
  EXPECT_EQ("((1 + (2 * 3)) = 7)", Reparse("1+2*3 = 7"));
  EXPECT_EQ("((child::a < 3) or (child::b >= 2))",
            Reparse("a < 3 or b >= 2"));
  EXPECT_EQ("(2 <= (3 mod 2))", Reparse("2 <= 3 mod 2"));
  EXPECT_EQ("(-3 + 1)", Reparse("-3 + 1"));
  EXPECT_EQ("((1 = 1) and (2 = 2))", Reparse("1 = 1 and 2 = 2"));
}

TEST(XPathParser, XPath2ComparisonSpellings) {
  EXPECT_EQ("(child::a = 1)", Reparse("a eq 1"));
  EXPECT_EQ("(child::a < 1)", Reparse("a lt 1"));
  EXPECT_EQ("(child::a >= 1)", Reparse("a ge 1"));
}

TEST(XPathParser, StarDisambiguation) {
  EXPECT_EQ("(2 * 3)", Reparse("2 * 3"));
  EXPECT_EQ("child::*/child::b", Reparse("*/b"));
  EXPECT_EQ("(child::* * 2)", Reparse("* * 2"));
}

TEST(XPathParser, FunctionsAndLiterals) {
  EXPECT_EQ("count(child::a)", Reparse("count(a)"));
  EXPECT_EQ("contains(child::a, 'x')", Reparse("contains(a,'x')"));
  EXPECT_EQ("not(empty(child::a))", Reparse("not(empty(a))"));
  EXPECT_EQ("concat('a', 'b', 'c')", Reparse("concat('a','b','c')"));
  EXPECT_EQ("position()", Reparse("position()"));
}

TEST(XPathParser, Variables) {
  EXPECT_EQ("$x", Reparse("$x"));
  EXPECT_EQ("$x/child::a", Reparse("$x/a"));
  EXPECT_EQ("$x/descendant-or-self::node()/child::a", Reparse("$x//a"));
  EXPECT_EQ("($x = $y)", Reparse("$x = $y"));
}

TEST(XPathParser, Union) {
  EXPECT_EQ("(child::a | child::b)", Reparse("a | b"));
  EXPECT_EQ("((child::a | child::b) | child::c)", Reparse("a|b|c"));
}

TEST(XPathParser, NestedPredicates) {
  EXPECT_EQ("child::a[child::b[child::c]]", Reparse("a[b[c]]"));
  EXPECT_EQ("child::a[(count(child::b) > 2)]", Reparse("a[count(b) > 2]"));
}

TEST(XPathParser, AbsolutePathAlone) {
  EXPECT_EQ("/", Reparse("/"));
}

TEST(XPathParser, ParseXPathRequiresPath) {
  EXPECT_TRUE(ParseXPath("/a/b").ok());
  EXPECT_FALSE(ParseXPath("1 + 2").ok());
}

struct BadQuery {
  const char* name;
  const char* text;
};

class XPathParserErrorTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(XPathParserErrorTest, Rejects) {
  EXPECT_FALSE(ParseXPathExpr(GetParam().text).ok()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XPathParserErrorTest,
    ::testing::Values(BadQuery{"EmptyPredicate", "a[]"},
                      BadQuery{"UnclosedPredicate", "a[b"},
                      BadQuery{"UnknownAxis", "sideways::a"},
                      BadQuery{"TrailingSlash2", "a/"},
                      BadQuery{"BareDollar", "$"},
                      BadQuery{"UnterminatedLiteral", "a['x]"},
                      BadQuery{"DoubleOperator", "a = = b"},
                      BadQuery{"TrailingTokens", "a b"},
                      BadQuery{"LoneBang", "a ! b"}),
    [](const ::testing::TestParamInfo<BadQuery>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace xmlproj
