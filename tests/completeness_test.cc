// Empirical check of Theorem 4.7 (completeness of projector inference):
// for *-guarded, non-recursive, parent-unambiguous DTDs and
// strongly-specified queries, the inferred projector is *optimal* — for
// every name Y in π, pruning additionally by {Y} ∪ A_E({Y}, descendant)
// changes the query result on some valid document.
//
// We witness the theorem on documents that instantiate every reachable
// name (the generator expands optional content), plus test the Def 4.6
// classifier on the paper's five example queries.

#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "projection/projector_inference.h"
#include "projection/pruner.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/xpathl.h"

namespace xmlproj {
namespace {

TEST(StronglySpecified, PaperExamples) {
  // §4.2: "among the following queries, only the first two are
  // strongly-specified."
  struct Case {
    const char* text;
    bool strong;
  };
  const Case cases[] = {
      {"descendant::node()/self::a/ancestor::node()", true},
      {"descendant::node()[child::b]/self::a/parent::node()", true},
      {"descendant::node()/ancestor::node()/self::a", false},  // (ii)
      {"descendant::node()[child::b/child::node()]/self::a", false},  // (iii)
      {"child::a[descendant::node()/parent::b]/child::c", false},  // (i)
  };
  for (const Case& c : cases) {
    auto path = ParseLPath(c.text);
    ASSERT_TRUE(path.ok()) << c.text;
    EXPECT_EQ(c.strong, IsStronglySpecified(*path)) << c.text;
  }
}

TEST(StronglySpecified, MoreShapes) {
  EXPECT_TRUE(
      IsStronglySpecified(*ParseLPath("child::a/descendant::b[child::c]")));
  // Two condition paths violate (iii).
  EXPECT_FALSE(IsStronglySpecified(
      *ParseLPath("child::a[child::b or child::c]")));
  // Condition ending in node() violates (iii).
  EXPECT_FALSE(
      IsStronglySpecified(*ParseLPath("child::a[child::node()]")));
  // Consecutive node() steps violate (ii).
  EXPECT_FALSE(IsStronglySpecified(
      *ParseLPath("child::node()/descendant::node()/self::a")));
}

// Checks minimality of the inferred projector for (dtd, query, document):
// dropping any name (with its descendants) must change the result.
void ExpectProjectorMinimal(const Dtd& dtd, const Document& doc,
                            const Interpretation& interp,
                            const char* query_text) {
  SCOPED_TRACE(query_text);
  auto lpath = ParseLPath(query_text);
  ASSERT_TRUE(lpath.ok()) << lpath.status().ToString();
  ASSERT_TRUE(IsStronglySpecified(*lpath));
  ASSERT_TRUE(dtd.IsStarGuarded());
  ASSERT_FALSE(dtd.IsRecursive());
  ASSERT_TRUE(dtd.IsParentUnambiguous());

  ProjectorInference inference(dtd);
  auto projector = inference.InferForPath(*lpath, false);
  ASSERT_TRUE(projector.ok());

  // Baseline result on the full document (relative query: root context).
  auto path = ParseXPath(query_text);
  ASSERT_TRUE(path.ok());
  XPathEvaluator eval(doc);
  auto baseline =
      eval.EvaluatePath(*path, {XNode{doc.root(), -1}});
  ASSERT_TRUE(baseline.ok());
  std::vector<NodeId> baseline_old;
  for (const XNode& n : *baseline) baseline_old.push_back(n.node);

  projector->ForEach([&](NameId victim) {
    if (victim == dtd.root()) return;  // the root cannot be dropped
    NameSet smaller = *projector;
    smaller.Remove(victim);
    NameSet victim_set(dtd.name_count());
    victim_set.Add(victim);
    smaller -= dtd.Descendants(victim_set);
    std::vector<NodeId> new_to_old;
    auto pruned = PruneDocument(doc, interp, smaller, nullptr, &new_to_old);
    ASSERT_TRUE(pruned.ok());
    XPathEvaluator eval_small(*pruned);
    NodeId pruned_root = pruned->root();
    std::vector<NodeId> got_old;
    if (pruned_root != kNullNode) {
      auto result =
          eval_small.EvaluatePath(*path, {XNode{pruned_root, -1}});
      ASSERT_TRUE(result.ok());
      for (const XNode& n : *result) got_old.push_back(new_to_old[n.node]);
    }
    EXPECT_NE(baseline_old, got_old)
        << "dropping " << dtd.production(victim).name
        << " did not change the result: the projector is not minimal";
  });
}

TEST(Completeness, SimpleChildQuery) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT book (title, author+, year?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
  )",
                               "book"))
                .value();
  Document doc = std::move(ParseXml(
                               "<book><title>T</title><author>A</author>"
                               "<year>1313</year></book>"))
                     .value();
  Interpretation interp = std::move(Validate(doc, dtd)).value();
  ExpectProjectorMinimal(dtd, doc, interp, "child::author");
  ExpectProjectorMinimal(dtd, doc, interp, "child::author/child::text()");
  ExpectProjectorMinimal(dtd, doc, interp, "child::year");
}

TEST(Completeness, DescendantAndPredicate) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (a, c)>
    <!ELEMENT a (d?)>
    <!ELEMENT c (e?)>
    <!ELEMENT d (#PCDATA)>
    <!ELEMENT e EMPTY>
  )",
                               "r"))
                .value();
  Document doc =
      std::move(ParseXml("<r><a><d>x</d></a><c><e/></c></r>")).value();
  Interpretation interp = std::move(Validate(doc, dtd)).value();
  ExpectProjectorMinimal(dtd, doc, interp, "descendant::d");
  ExpectProjectorMinimal(dtd, doc, interp, "child::a[child::d]");
  ExpectProjectorMinimal(dtd, doc, interp,
                         "descendant::node()/self::e");
}

TEST(Completeness, BackwardAxisInSpine) {
  // Backward axes are allowed in the query spine (only predicates are
  // restricted by Def 4.6(i)).
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (m)>
    <!ELEMENT m (l*)>
    <!ELEMENT l (#PCDATA)>
  )",
                               "r"))
                .value();
  Document doc = std::move(ParseXml("<r><m><l>a</l><l>b</l></m></r>"))
                     .value();
  Interpretation interp = std::move(Validate(doc, dtd)).value();
  ExpectProjectorMinimal(dtd, doc, interp,
                         "descendant::l/ancestor::m");
}

TEST(Completeness, KnownIncompletenessWitnesses) {
  // The paper's §4.2 counterexample: self::a[child::node] on
  // {X->a[Y,W], W->c[], Y->b[Z], Z->d[]} includes W=c although {X,Y} is
  // optimal. Confirm the query is NOT strongly specified (so Theorem 4.7
  // does not apply) and that the inferred projector is indeed non-minimal.
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT c EMPTY>
    <!ELEMENT b (d)>
    <!ELEMENT d EMPTY>
  )",
                               "a"))
                .value();
  auto lpath = ParseLPath("self::a[child::node()]");
  ASSERT_TRUE(lpath.ok());
  EXPECT_FALSE(IsStronglySpecified(*lpath));

  ProjectorInference inference(dtd);
  NameSet pi = std::move(inference.InferForPath(*lpath, false)).value();
  // Dropping c does NOT change the result on the witness document.
  Document doc =
      std::move(ParseXml("<a><b><d/></b><c/></a>")).value();
  Interpretation interp = std::move(Validate(doc, dtd)).value();
  NameSet smaller = pi;
  smaller.Remove(dtd.NameOfTag("c"));
  auto path = ParseXPath("self::a[child::node()]");
  XPathEvaluator eval(doc);
  auto baseline = eval.EvaluatePath(*path, {XNode{doc.root(), -1}});
  std::vector<NodeId> new_to_old;
  Document pruned =
      std::move(PruneDocument(doc, interp, smaller, nullptr, &new_to_old))
          .value();
  XPathEvaluator eval_small(pruned);
  auto result = eval_small.EvaluatePath(*path, {XNode{pruned.root(), -1}});
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(1u, baseline->size());
  ASSERT_EQ(1u, result->size());
  EXPECT_EQ((*baseline)[0].node, new_to_old[(*result)[0].node]);
}

}  // namespace
}  // namespace xmlproj
