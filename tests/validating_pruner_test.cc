#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "projection/projection.h"
#include "projection/pruner.h"
#include "random_xml.h"
#include "xmark/generator.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

using testing_random::DocGenerator;
using testing_random::RandomDtd;

constexpr char kBookDtd[] = R"(
  <!ELEMENT library (book*)>
  <!ELEMENT book (title, author+, year?)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT year (#PCDATA)>
  <!ATTLIST book isbn CDATA #REQUIRED>
)";

constexpr char kValidXml[] =
    R"(<library><book isbn="1"><title>T</title><author>A</author>)"
    R"(<year>1313</year></book></library>)";

Dtd BookDtd() { return std::move(ParseDtd(kBookDtd, "library")).value(); }

TEST(ValidatingPruner, AcceptsValidAndPrunes) {
  Dtd dtd = BookDtd();
  auto analysis = AnalyzeXPathQuery(dtd, "/library/book/author");
  ASSERT_TRUE(analysis.ok());
  PruneStats stats;
  auto pruned =
      ParseValidateAndPrune(kValidXml, dtd, analysis->projector, &stats);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(
      R"(<library><book isbn="1"><author>A</author></book></library>)",
      SerializeDocument(*pruned));
  EXPECT_LT(stats.kept_nodes, stats.input_nodes);
}

struct InvalidCase {
  const char* name;
  const char* xml;
  const char* message_fragment;
};

class ValidatingPrunerRejects
    : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(ValidatingPrunerRejects, InvalidInput) {
  Dtd dtd = BookDtd();
  NameSet all = dtd.AllNames();
  auto result = ParseValidateAndPrune(GetParam().xml, dtd, all);
  ASSERT_FALSE(result.ok()) << GetParam().xml;
  EXPECT_NE(result.status().message().find(GetParam().message_fragment),
            std::string::npos)
      << result.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ValidatingPrunerRejects,
    ::testing::Values(
        InvalidCase{"WrongRoot", "<book isbn='1'><title>T</title>"
                                 "<author>A</author></book>",
                    "root element"},
        InvalidCase{"MissingAuthor",
                    "<library><book isbn='1'><title>T</title></book>"
                    "</library>",
                    "content model"},
        InvalidCase{"WrongOrder",
                    "<library><book isbn='1'><author>A</author>"
                    "<title>T</title></book></library>",
                    "content model"},
        InvalidCase{"Undeclared",
                    "<library><ghost/></library>", "undeclared"},
        InvalidCase{"MissingRequiredAttr",
                    "<library><book><title>T</title><author>A</author>"
                    "</book></library>",
                    "isbn"},
        InvalidCase{"TextWhereForbidden",
                    "<library>loose<book isbn='1'><title>T</title>"
                    "<author>A</author></book></library>",
                    "text content"},
        InvalidCase{"TooManyYears",
                    "<library><book isbn='1'><title>T</title>"
                    "<author>A</author><year>1</year><year>2</year>"
                    "</book></library>",
                    "content model"}),
    [](const ::testing::TestParamInfo<InvalidCase>& info) {
      return info.param.name;
    });

TEST(ValidatingPruner, ErrorsEarlyInsideDeadContent) {
  // The incremental matcher reports a violation at the offending child,
  // even though the subtree continues afterwards.
  Dtd dtd = BookDtd();
  NameSet all = dtd.AllNames();
  auto result = ParseValidateAndPrune(
      "<library><book isbn='1'><year>1</year><title>T</title>"
      "<author>A</author></book></library>",
      dtd, all);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("at child 'year'"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ValidatingPruner, AgreesWithBatchValidatorOnRandomInputs) {
  for (uint64_t seed = 300; seed < 330; ++seed) {
    int tag_count = 0;
    Dtd dtd = RandomDtd(seed, &tag_count);
    DocGenerator doc_gen(dtd, seed * 3 + 1);
    Document doc = std::move(doc_gen.Generate()).value();
    if (doc.root() == kNullNode) continue;
    std::string xml = SerializeDocument(doc);
    NameSet all = dtd.AllNames();
    // Batch validator accepts, so the streaming one must too, and the
    // identity projection must round-trip the document.
    ASSERT_TRUE(Validate(doc, dtd).ok());
    auto pruned = ParseValidateAndPrune(xml, dtd, all);
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    EXPECT_EQ(xml, SerializeDocument(*pruned));
  }
}

TEST(ValidatingPruner, MatchesPlainStreamingPrunerOutput) {
  Dtd dtd = std::move(LoadXMarkDtd()).value();
  XMarkOptions options;
  options.scale = 0.001;
  std::string xml = GenerateXMarkText(options);
  auto analysis =
      AnalyzeXPathQuery(dtd, "/site/people/person[homepage]/name");
  ASSERT_TRUE(analysis.ok());
  auto plain = ParseAndPrune(xml, dtd, analysis->projector);
  auto validating = ParseValidateAndPrune(xml, dtd, analysis->projector);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(validating.ok()) << validating.status().ToString();
  EXPECT_EQ(SerializeDocument(*plain), SerializeDocument(*validating));
}

TEST(ContentMatcherIncremental, AgreesWithBatchOnRandomSequences) {
  for (uint64_t seed = 400; seed < 420; ++seed) {
    int tag_count = 0;
    Dtd dtd = RandomDtd(seed, &tag_count);
    Rng rng(seed);
    for (NameId name = 0; name < static_cast<NameId>(dtd.name_count());
         ++name) {
      if (dtd.IsStringName(name) || name == dtd.document_name()) continue;
      const ContentMatcher& matcher = dtd.MatcherOf(name);
      for (int trial = 0; trial < 20; ++trial) {
        int len = rng.IntIn(0, 5);
        std::vector<NameId> children;
        for (int i = 0; i < len; ++i) {
          children.push_back(static_cast<NameId>(
              rng.Below(dtd.name_count())));
        }
        ContentMatcher::MatchState state = matcher.StartState();
        for (NameId c : children) matcher.Advance(&state, c);
        EXPECT_EQ(matcher.Matches(children), matcher.Accepts(state));
      }
    }
  }
}

}  // namespace
}  // namespace xmlproj
