#include "dtd/dataguide.h"

#include <gtest/gtest.h>

#include "dtd/validator.h"
#include "projection/projection.h"
#include "projection/pruner.h"
#include "xmark/generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlproj {
namespace {

Document Parse(std::string_view xml) {
  return std::move(ParseXml(xml)).value();
}

TEST(DataGuide, InfersGrammarShape) {
  Document doc = Parse(
      "<lib><book><title>T1</title><author>A</author></book>"
      "<book><title>T2</title></book><note/></lib>");
  auto dtd = InferDataGuide(doc);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  NameId lib = dtd->NameOfTag("lib");
  NameId book = dtd->NameOfTag("book");
  NameId title = dtd->NameOfTag("title");
  ASSERT_NE(kNoName, lib);
  EXPECT_EQ(lib, dtd->root());
  EXPECT_TRUE(dtd->ChildrenOf(lib).Contains(book));
  EXPECT_TRUE(dtd->ChildrenOf(lib).Contains(dtd->NameOfTag("note")));
  EXPECT_TRUE(dtd->ChildrenOf(book).Contains(title));
  // Text only under title/author.
  EXPECT_NE(kNoName, dtd->StringNameOf(title));
  EXPECT_EQ(kNoName, dtd->StringNameOf(book));
  EXPECT_EQ(kNoName, dtd->StringNameOf(dtd->NameOfTag("note")));
}

TEST(DataGuide, SampleValidatesAgainstItsGuide) {
  Document doc = Parse(
      "<r><a>x<b/></a><a><b>t</b><b/></a><c>only text</c></r>");
  auto dtd = InferDataGuide(doc);
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(Validate(doc, *dtd).ok());
}

TEST(DataGuide, XMarkDocumentValidatesAgainstItsGuide) {
  XMarkOptions options;
  options.scale = 0.001;
  Document doc = std::move(GenerateXMark(options)).value();
  auto dtd = InferDataGuide(doc);
  ASSERT_TRUE(dtd.ok());
  auto interp = Validate(doc, *dtd);
  EXPECT_TRUE(interp.ok()) << interp.status().ToString();
}

TEST(DataGuide, DtdFreeProjectionIsSound) {
  // The paper's §7 extension: the whole pipeline without any DTD.
  XMarkOptions options;
  options.scale = 0.001;
  Document doc = std::move(GenerateXMark(options)).value();
  auto dtd = InferDataGuide(doc);
  ASSERT_TRUE(dtd.ok());
  Interpretation interp = std::move(Validate(doc, *dtd)).value();

  for (const char* query :
       {"/site/people/person/name", "//keyword",
        "/site/open_auctions/open_auction[bidder]/initial",
        "//item[contains(description, 'gold')]/name",
        "//bidder/ancestor::open_auction/seller"}) {
    auto analysis = AnalyzeXPathQuery(*dtd, query);
    ASSERT_TRUE(analysis.ok()) << query;
    auto pruned = PruneDocument(doc, interp, analysis->projector);
    ASSERT_TRUE(pruned.ok());
    auto path = ParseXPath(query);
    XPathEvaluator eval_orig(doc);
    XPathEvaluator eval_pruned(*pruned);
    auto res_orig = eval_orig.EvaluateFromRoot(*path);
    auto res_pruned = eval_pruned.EvaluateFromRoot(*path);
    ASSERT_TRUE(res_orig.ok());
    ASSERT_TRUE(res_pruned.ok());
    ASSERT_EQ(res_orig->size(), res_pruned->size()) << query;
    for (size_t i = 0; i < res_orig->size(); ++i) {
      EXPECT_EQ(SerializeSubtree(doc, (*res_orig)[i].node),
                SerializeSubtree(*pruned, (*res_pruned)[i].node))
          << query;
    }
  }
}

TEST(DataGuide, DataGuideIsCoarserThanDtd) {
  // The inferred guide loses ordering/cardinality, so its projectors can
  // only be equal or larger than the real DTD's — never smaller in a way
  // that breaks queries (soundness is covered above). Spot-check that it
  // still prunes.
  XMarkOptions options;
  options.scale = 0.001;
  Document doc = std::move(GenerateXMark(options)).value();
  auto dtd = InferDataGuide(doc);
  ASSERT_TRUE(dtd.ok());
  Interpretation interp = std::move(Validate(doc, *dtd)).value();
  auto analysis = AnalyzeXPathQuery(*dtd, "/site/people/person/name");
  ASSERT_TRUE(analysis.ok());
  auto pruned = PruneDocument(doc, interp, analysis->projector);
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->content_node_count(), doc.content_node_count() / 4);
}

TEST(DataGuideBuilder, MergesMultipleDocuments) {
  DataGuideBuilder builder;
  ASSERT_TRUE(builder.AddDocument(Parse("<r><a><b/></a></r>")).ok());
  ASSERT_TRUE(builder.AddDocument(Parse("<r><a>text</a><c/></r>")).ok());
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  NameId a = dtd->NameOfTag("a");
  EXPECT_TRUE(dtd->ChildrenOf(dtd->root()).Contains(dtd->NameOfTag("c")));
  EXPECT_TRUE(dtd->ChildrenOf(a).Contains(dtd->NameOfTag("b")));
  EXPECT_NE(kNoName, dtd->StringNameOf(a));
  // Both samples validate against the merged guide.
  EXPECT_TRUE(Validate(Parse("<r><a><b/></a></r>"), *dtd).ok());
  EXPECT_TRUE(Validate(Parse("<r><a>text</a><c/></r>"), *dtd).ok());
}

TEST(DataGuideBuilder, RejectsRootMismatch) {
  DataGuideBuilder builder;
  ASSERT_TRUE(builder.AddDocument(Parse("<r/>")).ok());
  EXPECT_FALSE(builder.AddDocument(Parse("<other/>")).ok());
}

TEST(DataGuideBuilder, RejectsEmpty) {
  DataGuideBuilder builder;
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DataGuide, RecursiveDocument) {
  Document doc = Parse("<d><d><d/></d><leaf>x</leaf></d>");
  auto dtd = InferDataGuide(doc);
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(dtd->IsRecursive());
  EXPECT_TRUE(Validate(doc, *dtd).ok());
}

}  // namespace
}  // namespace xmlproj
