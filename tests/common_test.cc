#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/memory_meter.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace xmlproj {
namespace {

// --- Status / Result ------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(StatusCode::kOk, s.code());
  EXPECT_EQ("OK", s.ToString());
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kParseError, s.code());
  EXPECT_EQ("bad token", s.message());
  EXPECT_EQ("PARSE_ERROR: bad token", s.ToString());
  EXPECT_EQ(StatusCode::kInvalid, InvalidError("x").code());
  EXPECT_EQ(StatusCode::kUnsupported, UnsupportedError("x").code());
  EXPECT_EQ(StatusCode::kNotFound, NotFoundError("x").code());
  EXPECT_EQ(StatusCode::kInternal, InternalError("x").code());
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(42, ok.value());
  EXPECT_EQ(42, *ok);

  Result<int> bad = NotFoundError("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ("nope", bad.status().message());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  XMLPROJ_ASSIGN_OR_RETURN(int half, Half(x));
  XMLPROJ_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(Result, AssignOrReturnMacro) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(2, *ok);
  EXPECT_FALSE(Quarter(6).ok());  // fails at the second step
  EXPECT_FALSE(Quarter(3).ok());  // fails at the first step
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(7, *v);
}

// --- Strings ---------------------------------------------------------------

TEST(Strings, Split) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(4u, pieces.size());
  EXPECT_EQ("a", pieces[0]);
  EXPECT_EQ("", pieces[2]);
  EXPECT_EQ(1u, Split("", ',').size());
}

TEST(Strings, StripWhitespace) {
  EXPECT_EQ("x y", StripWhitespace("  \t x y \n\r"));
  EXPECT_EQ("", StripWhitespace("   "));
  EXPECT_EQ("a", StripWhitespace("a"));
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(Strings, Join) {
  EXPECT_EQ("a, b, c", Join({"a", "b", "c"}, ", "));
  EXPECT_EQ("", Join({}, ","));
  EXPECT_EQ("x", Join({"x"}, ","));
}

TEST(Strings, IsAllXmlWhitespace) {
  EXPECT_TRUE(IsAllXmlWhitespace(" \t\r\n"));
  EXPECT_TRUE(IsAllXmlWhitespace(""));
  EXPECT_FALSE(IsAllXmlWhitespace(" x "));
}

TEST(Strings, StringPrintf) {
  EXPECT_EQ("x=7, y=ab", StringPrintf("x=%d, y=%s", 7, "ab"));
  EXPECT_EQ("", StringPrintf("%s", ""));
  // Long output exceeding any small static buffer.
  std::string big = StringPrintf("%0512d", 1);
  EXPECT_EQ(512u, big.size());
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(43);
  EXPECT_NE(Rng(42).Next(), c.Next());
}

TEST(Rng, IntInBounds) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.IntIn(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(5u, seen.size());  // all values hit
}

TEST(Rng, Double01InRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Double01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(rng.Chance(5, 5));
    EXPECT_FALSE(rng.Chance(0, 5));
  }
}

// --- MemoryMeter -------------------------------------------------------------

TEST(MemoryMeter, TracksPeak) {
  MemoryMeter meter;
  meter.Add(100);
  meter.Add(50);
  EXPECT_EQ(150u, meter.current());
  meter.Sub(120);
  EXPECT_EQ(30u, meter.current());
  EXPECT_EQ(150u, meter.peak());
}

TEST(MemoryMeter, BaselineContributesToPeak) {
  MemoryMeter meter;
  meter.AddBaseline(1000);
  EXPECT_EQ(1000u, meter.peak());
  meter.Add(10);
  EXPECT_EQ(1010u, meter.peak());
  meter.Sub(10);
  EXPECT_EQ(1000u, meter.current());
}

// Over-releasing is an accounting bug (double release): debug builds
// assert, release builds clamp at zero so benches never go negative.
#ifdef NDEBUG
TEST(MemoryMeter, SubClampsAtZeroInReleaseBuilds) {
  MemoryMeter meter;
  meter.Add(5);
  meter.Sub(50);
  EXPECT_EQ(0u, meter.current());
}
#elif defined(GTEST_HAS_DEATH_TEST) && GTEST_HAS_DEATH_TEST
TEST(MemoryMeterDeathTest, SubUnderflowAssertsInDebugBuilds) {
  EXPECT_DEATH(
      {
        MemoryMeter meter;
        meter.Add(5);
        meter.Sub(50);
      },
      "underflow");
}
#endif

TEST(MemoryMeter, MeteredBytesGuard) {
  MemoryMeter meter;
  {
    MeteredBytes guard(&meter, 64);
    EXPECT_EQ(64u, meter.current());
  }
  EXPECT_EQ(0u, meter.current());
  EXPECT_EQ(64u, meter.peak());
  { MeteredBytes null_guard(nullptr, 64); }  // null meter is a no-op
}

}  // namespace
}  // namespace xmlproj
