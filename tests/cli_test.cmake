# CLI contract tests for parallel_prune_tool, driven via
#   ctest → cmake -DTOOL=<path> -P cli_test.cmake
#
# Verifies the strict-flag satellite: --threads 0 / negative and a
# malformed or non-positive --chunk-bytes / --intra-doc-threads must exit
# with the usage code (1), never silently clamp; a well-formed invocation
# with the new intra-document flags must exit 0.

if(NOT DEFINED TOOL)
  message(FATAL_ERROR "pass -DTOOL=<path to parallel_prune_tool>")
endif()

set(failures 0)

# expect_exit(<code> <arg>...) — run the tool, compare the exit code.
function(expect_exit expected)
  execute_process(COMMAND "${TOOL}" ${ARGN}
    RESULT_VARIABLE got
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT got STREQUAL "${expected}")
    math(EXPR failures "${failures} + 1")
    set(failures "${failures}" PARENT_SCOPE)
    message(STATUS "FAIL: '${TOOL} ${ARGN}' exited ${got}, want ${expected}")
    message(STATUS "  stderr: ${err}")
  else()
    message(STATUS "ok: '${ARGN}' -> ${got}")
  endif()
endfunction()

# expect_output(<regex> <arg>...) — run the tool, expect exit 0 and the
# combined stdout/stderr to match the regex.
function(expect_output pattern)
  execute_process(COMMAND "${TOOL}" ${ARGN}
    RESULT_VARIABLE got
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT got STREQUAL "0")
    math(EXPR failures "${failures} + 1")
    set(failures "${failures}" PARENT_SCOPE)
    message(STATUS "FAIL: '${TOOL} ${ARGN}' exited ${got}, want 0")
    message(STATUS "  stderr: ${err}")
  elseif(NOT "${out}${err}" MATCHES "${pattern}")
    math(EXPR failures "${failures} + 1")
    set(failures "${failures}" PARENT_SCOPE)
    message(STATUS "FAIL: '${ARGN}' output does not match '${pattern}'")
    message(STATUS "  output: ${out}")
  else()
    message(STATUS "ok: '${ARGN}' matches '${pattern}'")
  endif()
endfunction()

# Usage errors: exit 1, nothing clamped.
expect_exit(1 --threads=0)
expect_exit(1 --threads=-2)
expect_exit(1 --threads=abc)
expect_exit(1 --chunk-bytes=0)
expect_exit(1 --chunk-bytes=-64)
expect_exit(1 --chunk-bytes=64k)
expect_exit(1 --intra-doc-threads=0)
expect_exit(1 --intra-doc-threads=-1)
expect_exit(1 --no-such-flag)

# Observability flags are strict too.
expect_exit(1 --statsd=missing-port)
expect_exit(1 --statsd=:8125)
expect_exit(1 --statsd=localhost:)
expect_exit(1 --push-interval-ms=0)
expect_exit(1 --push-interval-ms=-5)
expect_exit(1 --journal=)
expect_exit(1 --docs=1 --scale=0.001 --auto-budget)  # needs --journal

# Well-formed runs: exit 0. Tiny corpus keeps this fast; the second run
# exercises the intra-document flags end to end (small docs fall back to
# the sequential pass, which is exactly the contract).
expect_exit(0 --docs=1 --scale=0.001 --threads=1)
expect_exit(0 --docs=1 --scale=0.001 --intra-doc-threads=2 --chunk-bytes=4096)

# Journal → auto-budget round trip: the first run appends a record with a
# metered peak; the second loads it, derives a p99-based cap, and says so.
set(journal_dir "${CMAKE_CURRENT_BINARY_DIR}/cli_test_journal")
file(REMOVE_RECURSE "${journal_dir}")
expect_output("journal: appended run run-"
  --docs=2 --scale=0.001 --threads=1 --journal=${journal_dir}
  --corpus-label=cli-test)
expect_output("auto-budget: p99 peak [0-9]+ bytes over 1 run\\(s\\) -> max-bytes=[0-9]+"
  --docs=2 --scale=0.001 --threads=1 --journal=${journal_dir}
  --corpus-label=cli-test --auto-budget)
# A different corpus label must not inherit that budget.
expect_output("auto-budget: no prior peak history"
  --docs=1 --scale=0.001 --threads=1 --journal=${journal_dir}
  --corpus-label=other-corpus --auto-budget)
# An explicit cap always wins over the suggestion.
expect_output("auto-budget: --max-bytes=[0-9]+ set explicitly"
  --docs=1 --scale=0.001 --threads=1 --journal=${journal_dir}
  --corpus-label=cli-test --auto-budget --max-bytes=100000000)
file(REMOVE_RECURSE "${journal_dir}")

# Push flags accept well-formed values (a dead UDP target is fine by
# design: fire-and-forget).
expect_output("pushing metrics every 200 ms to 1 sink"
  --docs=1 --scale=0.001 --threads=1 --statsd=127.0.0.1:1 --push-interval-ms=200)

# Checkpoint/resume flag contract: strict values and mutual exclusions.
expect_exit(1 --checkpoint=)
expect_exit(1 --resume=)
expect_exit(1 --drain-ms=abc)
expect_exit(1 --drain-ms=-1)
expect_exit(1 --watchdog-factor=0)
expect_exit(1 --watchdog-factor=2)                     # needs --deadline-ms
expect_exit(1 --checkpoint=/tmp/a --resume=/tmp/b)     # mutually exclusive
expect_exit(1 --checkpoint=/tmp/a --sweep)             # sweep re-runs tasks
expect_exit(1 --resume-retry-quarantined)              # needs --resume

# The full exit-code table (README "Exit codes"), one probe per code the
# tool can produce without a signal: 0 ok, 1 usage (above), 3 input
# file, 4 empty corpus, 6 report write, 9 resume binding mismatch.
expect_exit(3 --input=/nonexistent/no-such-file.xml)
expect_exit(4 --docs=0)
expect_exit(6 --docs=1 --scale=0.001 --threads=1
  --metrics-out=/nonexistent-dir/metrics.json)

# Checkpoint -> resume end to end: a checkpointed run commits durable
# outputs; resuming it skips every settled task; resuming against a
# different corpus refuses with the distinct mismatch code.
set(ck_dir "${CMAKE_CURRENT_BINARY_DIR}/cli_test_checkpoint")
file(REMOVE_RECURSE "${ck_dir}")
expect_output("checkpoint: run run-"
  --docs=2 --scale=0.001 --threads=1 --policy=isolate --checkpoint=${ck_dir})
expect_output("resume: run run-.* settled 2 task\\(s\\) \\(2 completed"
  --docs=2 --scale=0.001 --threads=1 --policy=isolate --resume=${ck_dir})
expect_exit(9 --docs=3 --scale=0.001 --threads=1 --policy=isolate
  --resume=${ck_dir})
file(REMOVE_RECURSE "${ck_dir}")

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} CLI contract check(s) failed")
endif()
