# CLI contract tests for parallel_prune_tool, driven via
#   ctest → cmake -DTOOL=<path> -P cli_test.cmake
#
# Verifies the strict-flag satellite: --threads 0 / negative and a
# malformed or non-positive --chunk-bytes / --intra-doc-threads must exit
# with the usage code (1), never silently clamp; a well-formed invocation
# with the new intra-document flags must exit 0.

if(NOT DEFINED TOOL)
  message(FATAL_ERROR "pass -DTOOL=<path to parallel_prune_tool>")
endif()

set(failures 0)

# expect_exit(<code> <arg>...) — run the tool, compare the exit code.
function(expect_exit expected)
  execute_process(COMMAND "${TOOL}" ${ARGN}
    RESULT_VARIABLE got
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT got STREQUAL "${expected}")
    math(EXPR failures "${failures} + 1")
    set(failures "${failures}" PARENT_SCOPE)
    message(STATUS "FAIL: '${TOOL} ${ARGN}' exited ${got}, want ${expected}")
    message(STATUS "  stderr: ${err}")
  else()
    message(STATUS "ok: '${ARGN}' -> ${got}")
  endif()
endfunction()

# Usage errors: exit 1, nothing clamped.
expect_exit(1 --threads=0)
expect_exit(1 --threads=-2)
expect_exit(1 --threads=abc)
expect_exit(1 --chunk-bytes=0)
expect_exit(1 --chunk-bytes=-64)
expect_exit(1 --chunk-bytes=64k)
expect_exit(1 --intra-doc-threads=0)
expect_exit(1 --intra-doc-threads=-1)
expect_exit(1 --no-such-flag)

# Well-formed runs: exit 0. Tiny corpus keeps this fast; the second run
# exercises the intra-document flags end to end (small docs fall back to
# the sequential pass, which is exactly the contract).
expect_exit(0 --docs=1 --scale=0.001 --threads=1)
expect_exit(0 --docs=1 --scale=0.001 --intra-doc-threads=2 --chunk-bytes=4096)

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} CLI contract check(s) failed")
endif()
