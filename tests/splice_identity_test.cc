// Splice-vs-reserialize byte identity: the zero-copy splicing sink
// (xml/splice.h) must produce exactly the bytes the event-by-event
// XmlWriter path produces, for every pruner, projector, and input shape
// — including the non-canonical markup (entities, CDATA, quote styles,
// end-tag whitespace) that forces its per-event fallback, and the
// chunked / budgeted / fault-injected pipeline configurations.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "dtd/dtd_parser.h"
#include "projection/pipeline.h"
#include "projection/projection.h"
#include "projection/pruner.h"
#include "random_xml.h"
#include "xmark/corpus.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/splice.h"

namespace xmlproj {
namespace {

using testing_random::DocGenerator;
using testing_random::RandomDtd;

const Dtd& XmarkDtd() {
  static const Dtd* dtd = new Dtd(std::move(LoadXMarkDtd()).value());
  return *dtd;
}

// The two sinks under comparison, behind one fused prune pass each.
std::string WriterPrune(std::string_view xml, const Dtd& dtd,
                        const NameSet& projector, bool validate,
                        Status* status_out = nullptr) {
  std::string out;
  SerializingHandler sink(&out);
  Status status;
  if (validate) {
    ValidatingPruner pruner(dtd, projector, &sink);
    status = ParseXmlStream(xml, &pruner);
  } else {
    StreamingPruner pruner(dtd, projector, &sink);
    status = ParseXmlStream(xml, &pruner);
  }
  if (status_out != nullptr) *status_out = status;
  return out;
}

std::string SplicePrune(std::string_view xml, const Dtd& dtd,
                        const NameSet& projector, bool validate,
                        Status* status_out = nullptr) {
  std::string out;
  SplicingSerializingHandler sink(xml, &out);
  Status status;
  if (validate) {
    ValidatingPruner pruner(dtd, projector, &sink);
    status = ParseXmlStream(xml, &pruner);
  } else {
    StreamingPruner pruner(dtd, projector, &sink);
    status = ParseXmlStream(xml, &pruner);
  }
  sink.Finish();
  if (status_out != nullptr) *status_out = status;
  return out;
}

TEST(SpliceIdentityTest, XMarkCorpusAcrossWorkloadProjectors) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 4;
  corpus_options.scale = 0.0005;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  std::vector<NameSet> projectors;
  projectors.push_back(XmarkDtd().AllNames());
  auto dashboard = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(dashboard.ok());
  projectors.push_back(*dashboard);
  for (const std::string& doc : corpus) {
    for (const NameSet& projector : projectors) {
      for (bool validate : {false, true}) {
        EXPECT_EQ(SplicePrune(doc, XmarkDtd(), projector, validate),
                  WriterPrune(doc, XmarkDtd(), projector, validate))
            << "validate=" << validate;
      }
    }
  }
}

TEST(SpliceIdentityTest, RandomGrammarsAndSubsetProjectors) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    int name_count = 0;
    Dtd dtd = RandomDtd(seed, &name_count);
    DocGenerator gen(dtd, seed * 17 + 3);
    auto doc = gen.Generate();
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    std::string xml = SerializeDocument(*doc);
    NameSet all = dtd.AllNames();
    // A thinned projector exercises splice-gap handling (dropped
    // subtrees split the kept ranges); keep even names plus the root.
    NameSet thinned(dtd.name_count());
    all.ForEach([&](NameId n) {
      if (n % 2 == 0) thinned.Add(n);
    });
    thinned.Add(dtd.root());
    for (const NameSet* projector : {&all, &thinned}) {
      for (bool validate : {false, true}) {
        Status writer_status;
        Status splice_status;
        std::string expected =
            WriterPrune(xml, dtd, *projector, validate, &writer_status);
        std::string actual =
            SplicePrune(xml, dtd, *projector, validate, &splice_status);
        EXPECT_EQ(splice_status.code(), writer_status.code())
            << "seed " << seed << " validate " << validate;
        if (writer_status.ok()) {
          EXPECT_EQ(actual, expected)
              << "seed " << seed << " validate " << validate;
        }
      }
    }
  }
}

// Hand-built markup hitting every canonicality escape hatch: the splice
// sink must fall back (not corrupt) and still match the writer bytes.
TEST(SpliceIdentityTest, NonCanonicalMarkupFallsBackByteIdentically) {
  constexpr char kDtdText[] = R"(
    <!ELEMENT r (a | b)*>
    <!ELEMENT a (#PCDATA | b)*>
    <!ELEMENT b EMPTY>
    <!ATTLIST a x CDATA #IMPLIED y CDATA #IMPLIED>
  )";
  Dtd dtd = std::move(ParseDtd(kDtdText, "r")).value();
  NameSet projector = dtd.AllNames();
  const char* cases[] = {
      // Entity references in text: raw bytes differ from decoded text.
      "<r><a>one &amp; two &lt;three&gt;</a></r>",
      // Entity references in attribute values.
      "<r><a x=\"a&amp;b\" y=\"q&quot;q\">t</a></r>",
      // Single-quoted attributes (writer re-emits double-quoted).
      "<r><a x='single'>t</a></r>",
      // Raw '>' in text and attribute values (writer escapes it).
      "<r><a x=\"1>2\">3>4</a></r>",
      // CDATA sections, alone and glued to plain runs.
      "<r><a><![CDATA[<not & markup>]]></a></r>",
      "<r><a>pre<![CDATA[mid]]>post</a></r>",
      "<r><a><![CDATA[]]></a></r>",
      // End-tag whitespace (parser accepts, writer never emits).
      "<r><a>t</a ></r >",
      // Start-tag whitespace oddities.
      "<r><a  x=\"1\">t</a></r>",
      "<r><a x = \"1\">t</a></r>",
      "<r><a x=\"1\" >t</a></r>",
      // Self-closing vs. childless: both serialize as <b/>.
      "<r><b/><b></b><b />&#32;</r>",
      // Comments and PIs interleaved with text runs.
      "<r><a>one<!-- c -->two<?pi data?>three</a></r>",
      // Character references, including whitespace-only decoded text.
      "<r><a>&#x48;&#105;</a><a> &#9; </a></r>",
      // Deeply spliced: pruned siblings cut the kept span repeatedly.
      "<r><a>k</a><b/><a>k</a><b/><a>k</a></r>",
  };
  for (const char* xml : cases) {
    for (bool validate : {false, true}) {
      Status writer_status;
      Status splice_status;
      std::string expected =
          WriterPrune(xml, dtd, projector, validate, &writer_status);
      std::string actual =
          SplicePrune(xml, dtd, projector, validate, &splice_status);
      ASSERT_TRUE(writer_status.ok())
          << xml << ": " << writer_status.ToString();
      ASSERT_TRUE(splice_status.ok())
          << xml << ": " << splice_status.ToString();
      EXPECT_EQ(actual, expected) << xml << " validate=" << validate;
    }
  }
  // Same cases with a thinned projector (drop 'b'): gaps at every cut.
  NameSet no_b(dtd.name_count());
  projector.ForEach([&](NameId n) {
    if (dtd.production(n).tag != "b") no_b.Add(n);
  });
  for (const char* xml : cases) {
    EXPECT_EQ(SplicePrune(xml, dtd, no_b, false),
              WriterPrune(xml, dtd, no_b, false))
        << xml;
  }
}

// Without a locator (DOM replay) every event falls back; output must
// equal the document serialization.
TEST(SpliceIdentityTest, NoLocatorReplayMatchesSerializeDocument) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 1;
  corpus_options.scale = 0.0005;
  std::string xml = GenerateXMarkCorpus(corpus_options)[0];
  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  std::string out;
  SplicingSerializingHandler sink(xml, &out);
  ASSERT_TRUE(ReplayAsSax(*doc, &sink).ok());
  sink.Finish();
  EXPECT_EQ(out, SerializeDocument(*doc));
}

// The pipeline matrix: chunked x validate x error policy, with budgets
// and fault injection in the mix, must stay byte-identical to the
// sequential writer reference for every surviving document.
TEST(SpliceIdentityTest, ChunkedAndBudgetedPipelineMatrix) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 3;
  corpus_options.scale = 0.001;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok());

  for (bool validate : {false, true}) {
    std::vector<std::string> expected;
    for (const std::string& doc : corpus) {
      expected.push_back(
          WriterPrune(doc, XmarkDtd(), *projector, validate));
    }
    for (ErrorPolicy policy :
         {ErrorPolicy::kFailFast, ErrorPolicy::kIsolate, ErrorPolicy::kRetry}) {
      for (bool chunked : {false, true}) {
        PipelineOptions options;
        options.num_threads = 2;
        options.validate = validate;
        options.policy = policy;
        options.budget.max_bytes = 64u << 20;  // generous: guard active
        if (chunked) {
          options.intra_doc.threads = 4;
          options.intra_doc.chunk_bytes = 1 << 10;
          options.intra_doc.min_doc_bytes = 1;
        }
        auto run = PruneCorpus(corpus, XmarkDtd(), *projector, options);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        EXPECT_TRUE(run->failures.empty());
        for (size_t i = 0; i < corpus.size(); ++i) {
          EXPECT_EQ(run->results[i].output, expected[i])
              << "doc " << i << " validate " << validate << " chunked "
              << chunked << " policy " << static_cast<int>(policy);
        }
      }
    }
  }
}

// Chaos slice: injected prune faults under kIsolate must not perturb the
// bytes of surviving documents.
TEST(SpliceIdentityTest, SurvivorsUnderFaultInjectionMatchReference) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 6;
  corpus_options.scale = 0.0003;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  NameSet projector = XmarkDtd().AllNames();

  FaultInjector fault(11);
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.probability = 0.25;
  fault.Arm("prune.element", spec);
  PipelineOptions options;
  options.num_threads = 2;
  options.policy = ErrorPolicy::kIsolate;
  options.fault = &fault;
  auto run = PruneCorpus(corpus, XmarkDtd(), projector, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  std::vector<bool> failed(corpus.size(), false);
  for (const TaskFailure& f : run->failures) failed[f.task] = true;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (failed[i]) continue;
    EXPECT_EQ(run->results[i].output,
              WriterPrune(corpus[i], XmarkDtd(), projector, false))
        << "survivor " << i;
  }
}

}  // namespace
}  // namespace xmlproj
