#include "dtd/validator.h"

#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "xml/parser.h"

namespace xmlproj {
namespace {

constexpr char kBookDtd[] = R"(
  <!ELEMENT book (title, author+, year?)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT year (#PCDATA)>
  <!ATTLIST book isbn CDATA #REQUIRED>
)";

Dtd BookDtd() { return std::move(ParseDtd(kBookDtd, "book")).value(); }

Document Parse(std::string_view xml) {
  return std::move(ParseXml(xml)).value();
}

TEST(Validator, ValidDocument) {
  Dtd dtd = BookDtd();
  Document doc = Parse(
      R"(<book isbn="x"><title>T</title><author>A</author>)"
      R"(<author>B</author><year>1313</year></book>)");
  auto interp = Validate(doc, dtd);
  ASSERT_TRUE(interp.ok()) << interp.status().ToString();
  // Root is mapped to the root name; text under title is title's String
  // name.
  EXPECT_EQ(dtd.root(), (*interp)[doc.root()]);
  NodeId title = doc.node(doc.root()).first_child;
  NodeId title_text = doc.node(title).first_child;
  EXPECT_EQ(dtd.StringNameOf(dtd.NameOfTag("title")),
            (*interp)[title_text]);
}

TEST(Validator, UniqueInterpretation) {
  // For local tree grammars the interpretation is tag-determined.
  Dtd dtd = BookDtd();
  Document doc = Parse(
      R"(<book isbn="x"><title>T</title><author>A</author></book>)");
  auto interp = Validate(doc, dtd);
  ASSERT_TRUE(interp.ok());
  for (NodeId id = 1; id < doc.size(); ++id) {
    if (doc.kind(id) == NodeKind::kElement) {
      EXPECT_EQ(dtd.NameOfTag(doc.tag_name(id)), (*interp)[id]);
    }
  }
}

TEST(Validator, WrongRoot) {
  Dtd dtd = BookDtd();
  Document doc = Parse("<title>T</title>");
  EXPECT_FALSE(Validate(doc, dtd).ok());
}

TEST(Validator, ContentModelViolationMissingAuthor) {
  Dtd dtd = BookDtd();
  Document doc = Parse(R"(<book isbn="x"><title>T</title></book>)");
  auto result = Validate(doc, dtd);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kInvalid, result.status().code());
}

TEST(Validator, ContentModelViolationWrongOrder) {
  Dtd dtd = BookDtd();
  Document doc = Parse(
      R"(<book isbn="x"><author>A</author><title>T</title></book>)");
  EXPECT_FALSE(Validate(doc, dtd).ok());
}

TEST(Validator, UndeclaredElement) {
  Dtd dtd = BookDtd();
  Document doc = Parse(
      R"(<book isbn="x"><title>T</title><author>A</author><ghost/></book>)");
  auto result = Validate(doc, dtd);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ghost"), std::string::npos);
}

TEST(Validator, TextWhereNotAllowed) {
  Dtd dtd = BookDtd();
  Document doc = Parse(
      R"(<book isbn="x">loose text<title>T</title><author>A</author></book>)");
  EXPECT_FALSE(Validate(doc, dtd).ok());
}

TEST(Validator, RequiredAttributeMissing) {
  Dtd dtd = BookDtd();
  Document doc = Parse(
      "<book><title>T</title><author>A</author></book>");
  auto result = Validate(doc, dtd);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("isbn"), std::string::npos);

  ValidationOptions no_attr_check;
  no_attr_check.check_attributes = false;
  EXPECT_TRUE(Validate(doc, dtd, no_attr_check).ok());
}

TEST(Validator, InterpretSkipsContentChecks) {
  Dtd dtd = BookDtd();
  // Invalid order, but Interpret only maps names.
  Document doc = Parse(
      R"(<book isbn="x"><author>A</author><title>T</title></book>)");
  auto interp = Interpret(doc, dtd);
  ASSERT_TRUE(interp.ok());
  EXPECT_EQ(dtd.NameOfTag("author"),
            (*interp)[doc.node(doc.root()).first_child]);
}

TEST(Validator, MixedContentDocument) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT p (#PCDATA | b)*>
    <!ELEMENT b (#PCDATA)>
  )",
                               "p"))
                .value();
  Document doc = Parse("<p>one <b>two</b> three</p>");
  auto interp = Validate(doc, dtd);
  ASSERT_TRUE(interp.ok()) << interp.status().ToString();
  NodeId t1 = doc.node(doc.root()).first_child;
  EXPECT_EQ(dtd.StringNameOf(dtd.root()), (*interp)[t1]);
}

TEST(Validator, RecursiveDocument) {
  Dtd dtd = std::move(ParseDtd("<!ELEMENT d (d*)>", "d")).value();
  Document doc = Parse("<d><d><d/></d><d/></d>");
  EXPECT_TRUE(Validate(doc, dtd).ok());
}

TEST(Validator, EmptyContentRejectsChildren) {
  Dtd dtd = std::move(ParseDtd("<!ELEMENT a EMPTY>\n", "a")).value();
  Document doc = Parse("<a>text</a>");
  EXPECT_FALSE(Validate(doc, dtd).ok());
}

}  // namespace
}  // namespace xmlproj
