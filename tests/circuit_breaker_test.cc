// Tests for the circuit breaker (common/circuit.h): the full state
// machine under an injectable clock — trip threshold and min-sample
// guard, cooldown into HALF-OPEN, probe admission and verdicts (re-close
// on all-success, re-open on any failure), journal-style Seed()
// semantics including ratio-preserving scale-down, denial accounting,
// and the exported metrics.

#include <cstdint>

#include <gtest/gtest.h>

#include "common/circuit.h"
#include "obs/metrics.h"

namespace xmlproj {
namespace {

// Injectable clock: a file-scope knob because CircuitBreakerOptions
// takes a plain function pointer.
uint64_t g_now_ns = 0;
uint64_t FakeNow() { return g_now_ns; }

CircuitBreakerOptions TestOptions() {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  options.cooldown_ms = 1000;
  options.half_open_probes = 2;
  options.now_ns = &FakeNow;
  return options;
}

void Fail(CircuitBreaker* breaker, int n) {
  for (int i = 0; i < n; ++i) breaker->RecordFailure();
}
void Succeed(CircuitBreaker* breaker, int n) {
  for (int i = 0; i < n; ++i) breaker->RecordSuccess();
}

TEST(CircuitBreakerTest, StartsClosedAndAdmitsEverything) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  EXPECT_EQ(breaker.state_int(), 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.denied(), 0u);
}

TEST(CircuitBreakerTest, MinSamplesGuardsAColdBreaker) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  // 3 straight failures: 100% failure rate but below min_samples=4.
  Fail(&breaker, 3);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  breaker.RecordFailure();  // 4th sample crosses the guard
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.opened(), 1u);
}

TEST(CircuitBreakerTest, TripsAtTheThresholdRatio) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  // 4 outcomes, 1 failure: 25% < 50% — stays closed.
  Succeed(&breaker, 3);
  Fail(&breaker, 1);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  // Push to 3 failures / 6 outcomes = exactly 50% — trips.
  Fail(&breaker, 2);
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
}

TEST(CircuitBreakerTest, SlidingWindowForgetsOldFailures) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());  // window 8
  Fail(&breaker, 3);
  // 8 successes evict all 3 failures from the window.
  Succeed(&breaker, 8);
  // A single new failure is 1/8 — far from tripping.
  Fail(&breaker, 1);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
}

TEST(CircuitBreakerTest, OpenDeniesUntilCooldownThenProbes) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  Fail(&breaker, 4);
  ASSERT_EQ(breaker.state(), CircuitState::kOpen);

  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.denied(), 2u);

  // Just short of the 1000 ms cooldown: still open.
  g_now_ns = 999 * 1000000ull;
  EXPECT_FALSE(breaker.Allow());

  // Cooldown elapsed: HALF-OPEN, admits exactly half_open_probes=2.
  g_now_ns = 1000 * 1000000ull;
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());  // probe quota exhausted
}

TEST(CircuitBreakerTest, AllProbesSucceedingRecloses) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  Fail(&breaker, 4);
  g_now_ns = 1000 * 1000000ull;
  ASSERT_TRUE(breaker.Allow());
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);  // 1 of 2 verdicts
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);

  // Re-close cleared the window: the old failures are forgotten and a
  // fresh single failure cannot re-trip.
  Fail(&breaker, 1);
  Succeed(&breaker, 3);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
}

TEST(CircuitBreakerTest, AnyProbeFailingReopens) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  Fail(&breaker, 4);
  g_now_ns = 1000 * 1000000ull;
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.opened(), 2u);

  // The new OPEN stint runs its own cooldown from the re-open.
  EXPECT_FALSE(breaker.Allow());
  g_now_ns = 2000 * 1000000ull;
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
}

TEST(CircuitBreakerTest, OutcomesArrivingWhileOpenAreDropped) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  Fail(&breaker, 4);
  ASSERT_EQ(breaker.state(), CircuitState::kOpen);
  // Stragglers from tasks admitted pre-trip must not perturb the probe
  // accounting or re-close the breaker.
  Succeed(&breaker, 10);
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
}

TEST(CircuitBreakerTest, SeedBelowMinSamplesStaysClosed) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  breaker.Seed(0, 3);  // 3 failures < min_samples=4
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
}

TEST(CircuitBreakerTest, SeedWithFailingHistoryStartsOpen) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  breaker.Seed(0, 32);
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  // Recovery path still works: cooldown → probes → close.
  g_now_ns = 1000 * 1000000ull;
  ASSERT_TRUE(breaker.Allow());
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
}

TEST(CircuitBreakerTest, SeedScalesDownPreservingTheRatio) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());  // window 8
  // 1000 outcomes at a 25% failure rate → scaled into 8 slots with ~25%
  // failures: below the 50% threshold, stays closed.
  breaker.Seed(750, 250);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);

  CircuitBreaker failing(TestOptions());
  // 75% failure rate preserved through scale-down → trips.
  failing.Seed(250, 750);
  EXPECT_EQ(failing.state(), CircuitState::kOpen);
}

TEST(CircuitBreakerTest, SeedNeverRoundsRealFailuresToZero) {
  CircuitBreakerOptions options = TestOptions();
  options.window = 4;
  CircuitBreaker breaker(options);
  // 1 failure in 10000: scale-down to 4 slots must keep >= 1 failure —
  // a failing history cannot round to a spotless window.
  breaker.Seed(9999, 1);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);  // 1/4 < 50%
  breaker.RecordFailure();  // 2/4 = 50% — the seeded failure counted
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
}

TEST(CircuitBreakerTest, SeedWithNoHistoryIsANoOp) {
  g_now_ns = 0;
  CircuitBreaker breaker(TestOptions());
  breaker.Seed(0, 0);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, PublishesMetrics) {
  g_now_ns = 0;
  MetricsRegistry registry;
  CircuitBreakerOptions options = TestOptions();
  options.metrics = &registry;
  CircuitBreaker breaker(options);

  Gauge* state = registry.GetGauge("xmlproj_circuit_state");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->Value(), 0);

  Fail(&breaker, 4);
  EXPECT_EQ(state->Value(), 2);
  EXPECT_EQ(registry.GetCounter("xmlproj_circuit_opened_total")->Value(), 1u);

  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(registry.GetCounter("xmlproj_circuit_fast_fail_total")->Value(),
            1u);

  g_now_ns = 1000 * 1000000ull;
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(state->Value(), 1);  // half-open
}

TEST(CircuitStateNameTest, NamesMatchHealthzVocabulary) {
  EXPECT_STREQ(CircuitStateName(CircuitState::kClosed), "closed");
  EXPECT_STREQ(CircuitStateName(CircuitState::kHalfOpen), "half-open");
  EXPECT_STREQ(CircuitStateName(CircuitState::kOpen), "open");
}

TEST(CircuitBreakerTest, DefaultOptionsClampDegenerateValues) {
  CircuitBreakerOptions options = TestOptions();
  options.window = 0;       // clamped to >= 1
  options.min_samples = 50; // clamped to window
  options.half_open_probes = 0;  // clamped to >= 1
  CircuitBreaker breaker(options);
  breaker.RecordFailure();  // window 1, min_samples 1, 100% failure
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
}

}  // namespace
}  // namespace xmlproj
