#include "xpath/approximate.h"

#include <gtest/gtest.h>

#include "xpath/parser.h"

namespace xmlproj {
namespace {

ApproximatedQuery Approx(std::string_view query) {
  auto path = ParseXPath(query);
  EXPECT_TRUE(path.ok()) << query << ": " << path.status().ToString();
  auto result = ApproximateQuery(*path);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  return std::move(result).value();
}

std::string MainOf(std::string_view query) {
  return ToString(Approx(query).main);
}

TEST(Approximate, AbsolutePathsKeptVerbatim) {
  // Absolute paths are analyzed from the #document grammar name; no
  // remapping is needed.
  ApproximatedQuery q = Approx("/site/people");
  EXPECT_TRUE(q.from_document_node);
  EXPECT_EQ("child::site/child::people", ToString(q.main));
}

TEST(Approximate, DoubleSlashBecomesDos) {
  EXPECT_EQ("descendant-or-self::node()/child::a", MainOf("//a"));
  EXPECT_EQ("descendant::a", MainOf("/descendant::a"));
}

TEST(Approximate, LAxesPassThrough) {
  EXPECT_EQ("child::a/child::b/parent::node()/ancestor::c",
            MainOf("/a/b/parent::node()/ancestor::c"));
}

TEST(Approximate, SiblingAxisRewrite) {
  // §4.3 second pass: X-sibling::T  ==>  parent::node()/child::T.
  EXPECT_EQ("child::a/parent::node()/child::b",
            MainOf("/a/following-sibling::b"));
  EXPECT_EQ("child::a/parent::node()/child::b",
            MainOf("/a/preceding-sibling::b"));
}

TEST(Approximate, FollowingAxisRewrite) {
  // §4.3 first pass (W3C expansion) + sibling approximation.
  EXPECT_EQ(
      "child::a/child::b/"
      "ancestor-or-self::node()/parent::node()/child::node()/"
      "descendant-or-self::c",
      MainOf("/a/b/following::c"));
}

TEST(Approximate, AttributeCollapsesOntoElement) {
  EXPECT_EQ("child::a/child::b/self::node()", MainOf("/a/b/@id"));
}

TEST(Approximate, StructuralPredicateKept) {
  EXPECT_EQ("child::a/child::b[child::c]", MainOf("/a/b[c]"));
  EXPECT_EQ("child::a/child::b[child::c or child::d]",
            MainOf("/a/b[c or d]"));
  // Conjunctions approximate to disjunctions (superset, sound).
  EXPECT_EQ("child::a/child::b[child::c or child::d]",
            MainOf("/a/b[c and d]"));
}

TEST(Approximate, PaperPredicateExample) {
  // §3.3: [position()>1 and parent::node/book/author="Dante" and
  // year>1313] ~> [self::node or parent::node/book/author/dos or year/dos].
  ApproximatedQuery q = Approx(
      "/a/b[position() > 1 and parent::node()/book/author = 'Dante' "
      "and year > 1313]");
  ASSERT_EQ(2u, q.main.steps.size());
  const LStep& b = q.main.steps[1];
  std::vector<std::string> conds;
  for (const LPath& p : b.cond) conds.push_back(ToString(p));
  EXPECT_EQ(3u, conds.size());
  // position() contributes the non-structural marker self::node.
  EXPECT_EQ("self::node()", conds[0]);
  // Value comparisons keep the compared subtrees.
  EXPECT_EQ(
      "parent::node()/child::book/child::author/"
      "descendant-or-self::node()",
      conds[1]);
  EXPECT_EQ("child::year/descendant-or-self::node()", conds[2]);
}

TEST(Approximate, NonStructuralOnlyPredicate) {
  ApproximatedQuery q = Approx("/a/b[position() = 1]");
  const LStep& b = q.main.steps[1];
  ASSERT_EQ(1u, b.cond.size());
  EXPECT_EQ("self::node()", ToString(b.cond[0]));
}

TEST(Approximate, FunctionArgumentExtraction) {
  // §3.3: P(count(SPath)) = SPath/self::node — the argument path is kept
  // but the condition cannot restrict (self::node marker added).
  ApproximatedQuery q = Approx("/a/b[count(c) > 2]");
  const LStep& b = q.main.steps[1];
  std::vector<std::string> conds;
  for (const LPath& p : q.main.steps[1].cond) conds.push_back(ToString(p));
  ASSERT_EQ(2u, b.cond.size());
  EXPECT_EQ("child::c", conds[0]);
  EXPECT_EQ("self::node()", conds[1]);
}

TEST(Approximate, NotExtraction) {
  // descendant::node[not(child::a)] keeps child::a data but cannot
  // restrict the projector (§3.3 discussion).
  ApproximatedQuery q = Approx("/r/descendant::node()[not(child::a)]");
  std::vector<std::string> conds;
  for (const LPath& p : q.main.steps[1].cond) conds.push_back(ToString(p));
  ASSERT_EQ(2u, conds.size());
  EXPECT_EQ("child::a", conds[0]);
  EXPECT_EQ("self::node()", conds[1]);
}

TEST(Approximate, StringFunctionNeedsSubtree) {
  ApproximatedQuery q = Approx("/a/b[contains(c, 'x')]");
  std::vector<std::string> conds;
  for (const LPath& p : q.main.steps[1].cond) conds.push_back(ToString(p));
  ASSERT_EQ(2u, conds.size());
  EXPECT_EQ("child::c/descendant-or-self::node()", conds[0]);
  EXPECT_EQ("self::node()", conds[1]);
}

TEST(Approximate, FTable) {
  EXPECT_FALSE(FunctionNeedsSubtree("count", 0));
  EXPECT_FALSE(FunctionNeedsSubtree("not", 0));
  EXPECT_FALSE(FunctionNeedsSubtree("empty", 0));
  EXPECT_TRUE(FunctionNeedsSubtree("string", 0));
  EXPECT_TRUE(FunctionNeedsSubtree("contains", 0));
  EXPECT_TRUE(FunctionNeedsSubtree("sum", 0));
  EXPECT_TRUE(FunctionNeedsSubtree("frobnicate", 0));  // unknown: subtree
}

TEST(Approximate, NestedPredicatesFlattened) {
  // Conditions must be simple: a[b[c]] turns the inner predicate into a
  // prefixed path child::b/child::c.
  ApproximatedQuery q = Approx("/r/a[b[c]]");
  std::vector<std::string> conds;
  for (const LPath& p : q.main.steps[1].cond) conds.push_back(ToString(p));
  ASSERT_EQ(2u, conds.size());
  EXPECT_EQ("child::b/child::c", conds[0]);
  EXPECT_EQ("child::b", conds[1]);
}

TEST(Approximate, AbsolutePredicatePromoted) {
  ApproximatedQuery q = Approx("/r/a[/r/b = 1]");
  // The absolute path is promoted to a root-level extra path...
  ASSERT_EQ(1u, q.extra_paths.size());
  EXPECT_EQ("child::r/child::b/descendant-or-self::node()",
            ToString(q.extra_paths[0]));
  // ... and the condition itself cannot restrict.
  ASSERT_EQ(1u, q.main.steps[1].cond.size());
  EXPECT_EQ("self::node()", ToString(q.main.steps[1].cond[0]));
}

TEST(Approximate, VariablePredicateReported) {
  auto path = ParseXPath("/r/a[@id = $x/ref]");
  ASSERT_TRUE(path.ok());
  auto q = ApproximateQuery(*path);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(1u, q->var_conditions.size());
  EXPECT_EQ("x", q->var_conditions[0].variable);
  EXPECT_EQ("child::ref/descendant-or-self::node()",
            ToString(q->var_conditions[0].relative));
}

TEST(Approximate, VariableRootRejected) {
  auto path = ParseXPath("$x/a");
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(ApproximateQuery(*path).ok());
}

TEST(Approximate, RootOnly) {
  EXPECT_EQ("self::node()", MainOf("/"));
}

TEST(Approximate, UpwardFirstStepOnDocumentNode) {
  // parent of the document node: the analysis sees an empty type and
  // keeps only the root.
  EXPECT_EQ("parent::node()", MainOf("/parent::node()"));
}

TEST(Approximate, PredicateOnRewrittenAxisAttachesToLastStep) {
  // Sibling steps expand to parent::node()/child::Test; the original
  // step's predicate must land on the expanded child step.
  ApproximatedQuery q = Approx("/a/following-sibling::b[c]");
  ASSERT_EQ(3u, q.main.steps.size());
  EXPECT_TRUE(q.main.steps[0].cond.empty());
  EXPECT_TRUE(q.main.steps[1].cond.empty());
  ASSERT_EQ(1u, q.main.steps[2].cond.size());
  EXPECT_EQ("child::c", ToString(q.main.steps[2].cond[0]));
}

TEST(Approximate, MultiplePredicatesUnionIntoOneCondition) {
  // a[b][c] approximates to a[b or c] (conjunction -> disjunction is a
  // sound superset).
  ApproximatedQuery q = Approx("/r/a[b][c]");
  ASSERT_EQ(2u, q.main.steps.size());
  std::vector<std::string> conds;
  for (const LPath& p : q.main.steps[1].cond) conds.push_back(ToString(p));
  EXPECT_EQ((std::vector<std::string>{"child::b", "child::c"}), conds);
}

TEST(Approximate, PredicateInsideConditionOfFollowing) {
  // Nested predicate under a rewritten axis still flattens soundly.
  ApproximatedQuery q = Approx("/a/following::b[c[d]]");
  ASSERT_FALSE(q.main.steps.empty());
  const LStep& last = q.main.steps.back();
  ASSERT_EQ(2u, last.cond.size());
  EXPECT_EQ("child::c/child::d", ToString(last.cond[0]));
  EXPECT_EQ("child::c", ToString(last.cond[1]));
}

TEST(Approximate, PaperSampleQueryApproximation) {
  // Footnote 2: the approximation of Q replaces the value predicate by
  // [self::node].
  ApproximatedQuery q = Approx(
      "/descendant::author/child::text()[self::node() = 'Dante']"
      "/parent::node()/parent::node()/child::title");
  ASSERT_EQ(5u, q.main.steps.size());
  const LStep& text_step = q.main.steps[1];
  ASSERT_EQ(1u, text_step.cond.size());
  // self::node() = 'Dante' extracts self::node()/dos::node(), which
  // restricts nothing and keeps the text value.
  EXPECT_EQ("self::node()/descendant-or-self::node()",
            ToString(text_step.cond[0]));
}

}  // namespace
}  // namespace xmlproj
