#include "dtd/content_model.h"

#include <gtest/gtest.h>

namespace xmlproj {
namespace {

// Builds (a, (b | c)*, d?) over names a=0 b=1 c=2 d=3.
ContentModel SampleModel() {
  ContentModel m;
  int32_t a = m.Name(0);
  int32_t bc = m.Star(m.Choice({m.Name(1), m.Name(2)}));
  int32_t d = m.Opt(m.Name(3));
  m.set_root(m.Seq({a, bc, d}));
  return m;
}

TEST(ContentModel, CollectNames) {
  ContentModel m = SampleModel();
  NameSet names = m.CollectNames(4, nullptr);
  EXPECT_EQ(NameSet::Of(4, {0, 1, 2, 3}), names);
}

TEST(ContentModel, ToString) {
  ContentModel m = SampleModel();
  std::vector<std::string> names = {"a", "b", "c", "d"};
  EXPECT_EQ("(a, (b | c)*, d?)", m.ToString(names));
}

TEST(ContentMatcher, MatchesSequences) {
  ContentModel m = SampleModel();
  ContentMatcher matcher(m, 4);
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{0}));
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{0, 1, 2, 1}));
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{0, 3}));
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{0, 2, 3}));
  EXPECT_FALSE(matcher.Matches(std::vector<NameId>{}));
  EXPECT_FALSE(matcher.Matches(std::vector<NameId>{1}));
  EXPECT_FALSE(matcher.Matches(std::vector<NameId>{0, 3, 1}));
  EXPECT_FALSE(matcher.Matches(std::vector<NameId>{0, 3, 3}));
}

TEST(ContentMatcher, EmptyModelAcceptsOnlyEmpty) {
  ContentModel m;  // EMPTY content
  ContentMatcher matcher(m, 4);
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{}));
  EXPECT_TRUE(matcher.AcceptsEmpty());
  EXPECT_FALSE(matcher.Matches(std::vector<NameId>{0}));
}

TEST(ContentMatcher, PlusRequiresOne) {
  ContentModel m;
  m.set_root(m.Plus(m.Name(0)));
  ContentMatcher matcher(m, 2);
  EXPECT_FALSE(matcher.Matches(std::vector<NameId>{}));
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{0}));
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{0, 0, 0}));
  EXPECT_FALSE(matcher.Matches(std::vector<NameId>{0, 1}));
}

TEST(ContentMatcher, NestedGroups) {
  // ((a, b) | c)+
  ContentModel m;
  int32_t ab = m.Seq({m.Name(0), m.Name(1)});
  m.set_root(m.Plus(m.Choice({ab, m.Name(2)})));
  ContentMatcher matcher(m, 3);
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{0, 1}));
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{2, 0, 1, 2}));
  EXPECT_FALSE(matcher.Matches(std::vector<NameId>{0}));
  EXPECT_FALSE(matcher.Matches(std::vector<NameId>{0, 1, 0}));
}

TEST(ContentMatcher, AnyAcceptsEverything) {
  ContentModel m;
  m.set_root(m.Any());
  ContentMatcher matcher(m, 5);
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{}));
  EXPECT_TRUE(matcher.Matches(std::vector<NameId>{4, 0, 2, 2}));
}

TEST(ContentModel, StarGuardedness) {
  // (a, (b | c)*, d?) is *-guarded: the only union is starred.
  EXPECT_TRUE(SampleModel().IsStarGuarded());

  // (a | b) is not.
  ContentModel m1;
  m1.set_root(m1.Choice({m1.Name(0), m1.Name(1)}));
  EXPECT_FALSE(m1.IsStarGuarded());

  // ((a | b)+, c) is *-guarded ("+ counts as a guard").
  ContentModel m2;
  m2.set_root(
      m2.Seq({m2.Plus(m2.Choice({m2.Name(0), m2.Name(1)})), m2.Name(2)}));
  EXPECT_TRUE(m2.IsStarGuarded());

  // (a, (b | c)?) is not: the union is under '?', not '*'.
  ContentModel m3;
  m3.set_root(
      m3.Seq({m3.Name(0), m3.Opt(m3.Choice({m3.Name(1), m3.Name(2)}))}));
  EXPECT_FALSE(m3.IsStarGuarded());

  // EMPTY is trivially *-guarded.
  ContentModel m4;
  EXPECT_TRUE(m4.IsStarGuarded());
}

TEST(ContentModel, ContainsAny) {
  ContentModel m;
  m.set_root(m.Seq({m.Name(0), m.Any()}));
  EXPECT_TRUE(m.ContainsAny());
  EXPECT_FALSE(SampleModel().ContainsAny());
}

}  // namespace
}  // namespace xmlproj
