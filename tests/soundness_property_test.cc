// Randomized soundness check of the whole pipeline (Theorem 4.5):
// for random DTDs E, random documents t valid for E, and random XPath
// queries Q, the result of Q on t equals the result of Q on t\π where π is
// the projector inferred for Q — compared as *node identities* through the
// pruning id-map (the literal statement of the theorem), and additionally
// as serialized subtrees under materialization.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "random_xml.h"
#include "dtd/dtd.h"
#include "dtd/validator.h"
#include "projection/projection.h"
#include "projection/pruner.h"
#include "xml/serializer.h"
#include "xpath/ast.h"
#include "xpath/evaluator.h"

namespace xmlproj {
namespace {

using testing_random::DocGenerator;
using testing_random::QueryGenerator;
using testing_random::RandomDtd;
using testing_random::kTags;
using testing_random::kWords;

struct MappedNode {
  NodeId node;
  int32_t attr;
  bool operator==(const MappedNode& o) const {
    return node == o.node && attr == o.attr;
  }
  bool operator<(const MappedNode& o) const {
    return node != o.node ? node < o.node : attr < o.attr;
  }
};

class SoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SoundnessTest, PrunedQueryResultsMatch) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  int tag_count = 0;
  Dtd dtd = RandomDtd(seed, &tag_count);
  DocGenerator doc_gen(dtd, seed * 7919 + 13);
  auto doc_result = doc_gen.Generate();
  ASSERT_TRUE(doc_result.ok());
  Document doc = std::move(*doc_result);
  if (doc.root() == kNullNode) GTEST_SKIP() << "degenerate document";

  // Generated documents must be valid (generator follows content models).
  auto interp_result = Validate(doc, dtd);
  ASSERT_TRUE(interp_result.ok())
      << interp_result.status().ToString() << "\nDTD:\n"
      << dtd.ToString() << "\nDoc: " << SerializeDocument(doc);
  Interpretation interp = std::move(*interp_result);

  QueryGenerator query_gen(tag_count, seed * 104729 + 7);
  for (int q = 0; q < 15; ++q) {
    LocationPath query = query_gen.Generate();
    SCOPED_TRACE("query: " + ToString(query) + "\nDTD:\n" + dtd.ToString() +
                 "\ndoc: " + SerializeDocument(doc));

    // --- Node-identity soundness (no materialization) ------------------
    auto analysis = AnalyzeXPath(dtd, query, /*materialize_result=*/false);
    ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
    std::vector<NodeId> new_to_old;
    auto pruned =
        PruneDocument(doc, interp, analysis->projector, nullptr,
                      &new_to_old);
    ASSERT_TRUE(pruned.ok());

    XPathEvaluator eval_orig(doc);
    XPathEvaluator eval_pruned(*pruned);
    auto res_orig = eval_orig.EvaluateFromRoot(query);
    ASSERT_TRUE(res_orig.ok()) << res_orig.status().ToString();
    auto res_pruned = eval_pruned.EvaluateFromRoot(query);
    ASSERT_TRUE(res_pruned.ok()) << res_pruned.status().ToString();

    std::vector<MappedNode> orig_nodes;
    for (const XNode& n : *res_orig) {
      orig_nodes.push_back(MappedNode{n.node, n.attr});
    }
    std::vector<MappedNode> pruned_nodes;
    for (const XNode& n : *res_pruned) {
      pruned_nodes.push_back(MappedNode{new_to_old[n.node], n.attr});
    }
    EXPECT_EQ(orig_nodes, pruned_nodes)
        << "projector: approximated=" << ToString(analysis->approximated);

    // --- Materialized soundness (serialized subtrees) -------------------
    auto analysis_mat = AnalyzeXPath(dtd, query, true);
    ASSERT_TRUE(analysis_mat.ok());
    auto pruned_mat =
        PruneDocument(doc, interp, analysis_mat->projector);
    ASSERT_TRUE(pruned_mat.ok());
    XPathEvaluator eval_mat(*pruned_mat);
    auto res_mat = eval_mat.EvaluateFromRoot(query);
    ASSERT_TRUE(res_mat.ok());
    ASSERT_EQ(res_orig->size(), res_mat->size());
    for (size_t i = 0; i < res_orig->size(); ++i) {
      const XNode& a = (*res_orig)[i];
      const XNode& b = (*res_mat)[i];
      if (a.attr >= 0) continue;
      EXPECT_EQ(SerializeSubtree(doc, a.node),
                SerializeSubtree(*pruned_mat, b.node));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGrammars, SoundnessTest,
                         ::testing::Range(0, 40));

TEST(SoundnessInfra, StreamingAndDomPrunersAgreeOnRandomInputs) {
  for (uint64_t seed = 100; seed < 120; ++seed) {
    int tag_count = 0;
    Dtd dtd = RandomDtd(seed, &tag_count);
    DocGenerator doc_gen(dtd, seed);
    Document doc = std::move(doc_gen.Generate()).value();
    if (doc.root() == kNullNode) continue;
    Interpretation interp = std::move(Validate(doc, dtd)).value();
    QueryGenerator query_gen(tag_count, seed + 5);
    for (int q = 0; q < 5; ++q) {
      LocationPath query = query_gen.Generate();
      auto analysis = AnalyzeXPath(dtd, query, true);
      ASSERT_TRUE(analysis.ok());
      auto dom = PruneDocument(doc, interp, analysis->projector);
      auto stream = PruneViaStreaming(doc, dtd, analysis->projector);
      ASSERT_TRUE(dom.ok());
      ASSERT_TRUE(stream.ok());
      EXPECT_EQ(SerializeDocument(*dom), SerializeDocument(*stream))
          << ToString(query);
    }
  }
}

}  // namespace
}  // namespace xmlproj
