#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xmlproj {
namespace {

TEST(XmlWriter, EscapesTextAndAttributes) {
  std::string out;
  XmlWriter writer(&out);
  writer.StartElement("a");
  writer.Attribute("t", "x\"<>&");
  writer.Text("1 < 2 & 3 > 2");
  writer.EndElement();
  EXPECT_EQ("<a t=\"x&quot;&lt;&gt;&amp;\">1 &lt; 2 &amp; 3 &gt; 2</a>",
            out);
}

TEST(XmlWriter, SelfClosesEmptyElements) {
  std::string out;
  XmlWriter writer(&out);
  writer.StartElement("a");
  writer.StartElement("b");
  writer.EndElement();
  writer.EndElement();
  EXPECT_EQ("<a><b/></a>", out);
}

TEST(XmlWriter, TracksDepth) {
  std::string out;
  XmlWriter writer(&out);
  writer.StartElement("a");
  writer.StartElement("b");
  EXPECT_EQ(2u, writer.open_depth());
  writer.EndElement();
  EXPECT_EQ(1u, writer.open_depth());
  writer.EndElement();
  EXPECT_EQ(0u, writer.open_depth());
}

TEST(SerializeSubtree, OnlyThatSubtree) {
  auto doc = ParseXml("<a><b>x</b><c>y</c></a>");
  ASSERT_TRUE(doc.ok());
  NodeId b = doc->node(doc->root()).first_child;
  EXPECT_EQ("<b>x</b>", SerializeSubtree(*doc, b));
}

// Collects SAX events as a readable trace.
class TraceHandler : public SaxHandler {
 public:
  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override {
    trace_ += "<" + std::string(tag);
    for (const SaxAttribute& a : attributes) {
      trace_ += " " + std::string(a.name) + "=" + std::string(a.value);
    }
    trace_ += ">";
    return Status::Ok();
  }
  Status EndElement(std::string_view tag) override {
    trace_ += "</" + std::string(tag) + ">";
    return Status::Ok();
  }
  Status Characters(std::string_view text) override {
    trace_ += "[" + std::string(text) + "]";
    return Status::Ok();
  }
  const std::string& trace() const { return trace_; }

 private:
  std::string trace_;
};

TEST(ReplayAsSax, EmitsDocumentEvents) {
  auto doc = ParseXml(R"(<a k="v"><b>x</b><c/></a>)");
  ASSERT_TRUE(doc.ok());
  TraceHandler handler;
  ASSERT_TRUE(ReplayAsSax(*doc, &handler).ok());
  EXPECT_EQ("<a k=v><b>[x]</b><c></c></a>", handler.trace());
}

TEST(ReplayAsSax, RoundTripsViaSerializingHandler) {
  const char* text = "<a><b>x</b><c><d>y</d></c></a>";
  auto doc = ParseXml(text);
  ASSERT_TRUE(doc.ok());
  std::string out;
  SerializingHandler handler(&out);
  ASSERT_TRUE(ReplayAsSax(*doc, &handler).ok());
  // <c> has children so it is not self-closed; <b> has text.
  EXPECT_EQ(text, out);
}

TEST(ReplayAsSax, DeepDocumentIterative) {
  DocumentBuilder builder;
  constexpr int kDepth = 100000;
  for (int i = 0; i < kDepth; ++i) builder.StartElement("d");
  for (int i = 0; i < kDepth; ++i) builder.EndElement();
  Document doc = std::move(builder.Finish()).value();
  std::string out;
  SerializingHandler handler(&out);
  // Must not overflow the stack: ReplayAsSax is iterative.
  ASSERT_TRUE(ReplayAsSax(doc, &handler).ok());
  // Outer elements serialize as "<d>...</d>" (7 chars), the innermost
  // self-closes as "<d/>" (4 chars).
  EXPECT_EQ(static_cast<size_t>(kDepth - 1) * 7 + 4, out.size());
}

}  // namespace
}  // namespace xmlproj
