// Tests for the embedded observability HTTP server (obs/server.h):
// endpoint content (golden /metrics under a labeled run, /healthz,
// /statusz, /tracez), HTTP error handling (404, 405, malformed request,
// port already in use), scrapes racing a live 8-worker pipeline, and
// clean shutdown with a connection still open.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/server.h"
#include "obs/trace.h"
#include "projection/pipeline.h"
#include "xmark/corpus.h"
#include "xmark/workbench.h"
#include "xmark/xmark_dtd.h"

namespace xmlproj {
namespace {

// Raw loopback connection, for requests HttpGet cannot express
// (malformed lines, non-GET methods, half-open connections).
int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string RawRequest(uint16_t port, const std::string& request) {
  int fd = ConnectTo(port);
  if (fd < 0) return "";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ObsServer, GoldenMetricsUnderLabeledSeries) {
  MetricsRegistry registry;
  registry.SetHelp("xmlproj_pipeline_tasks_total", "Tasks completed");
  registry.GetCounter("xmlproj_pipeline_tasks_total")->Increment(8);
  registry.GetCounter("xmlproj_pipeline_tasks_total", {{"query_id", "0"}})
      ->Increment(3);
  registry.GetCounter("xmlproj_pipeline_tasks_total", {{"query_id", "1"}})
      ->Increment(5);
  registry.GetGauge("xmlproj_pipeline_threads")->Set(4);

  ObsServerOptions options;
  options.port = 0;
  options.registry = &registry;
  ObsServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  ASSERT_NE(server.port(), 0);

  std::string status_line, body;
  ASSERT_TRUE(HttpGet(server.port(), "/metrics", &status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos) << status_line;
  const char* expected =
      "# HELP xmlproj_pipeline_tasks_total Tasks completed\n"
      "# TYPE xmlproj_pipeline_tasks_total counter\n"
      "xmlproj_pipeline_tasks_total 8\n"
      "xmlproj_pipeline_tasks_total{query_id=\"0\"} 3\n"
      "xmlproj_pipeline_tasks_total{query_id=\"1\"} 5\n"
      "# TYPE xmlproj_pipeline_threads gauge\n"
      "xmlproj_pipeline_threads 4\n";
  EXPECT_EQ(body, expected);

  // The JSON exporter serves the same series under encoded keys.
  ASSERT_TRUE(HttpGet(server.port(), "/metrics.json", &status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  EXPECT_NE(
      body.find("\"xmlproj_pipeline_tasks_total{query_id=\\\"0\\\"}\": 3"),
      std::string::npos)
      << body;

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ObsServer, HealthzStatuszTracezRespond) {
  MetricsRegistry registry;
  TraceCollector trace;
  trace.AddCompleteEvent("prune", "stage", MonotonicNowNs(), 1000);

  ObsServerOptions options;
  options.port = 0;
  options.registry = &registry;
  options.trace = &trace;
  ObsServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  std::string status_line, body;
  ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"circuit\":\"closed\""), std::string::npos) << body;

  ASSERT_TRUE(HttpGet(server.port(), "/statusz", &status_line, &body));
  EXPECT_NE(body.find("\"progress\":"), std::string::npos) << body;
  EXPECT_NE(body.find("\"stages\":"), std::string::npos) << body;

  ASSERT_TRUE(HttpGet(server.port(), "/tracez", &status_line, &body));
  EXPECT_NE(body.find("\"name\":\"prune\""), std::string::npos) << body;

  // A degrading circuit surfaces through /healthz without a restart.
  registry.GetCounter("xmlproj_pipeline_isolated_total")->Increment();
  ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status_line, &body));
  EXPECT_NE(body.find("\"circuit\":\"degrading\""), std::string::npos)
      << body;

  EXPECT_GE(server.requests_served(), 4u);
  server.Stop();
}

// /tracez?trace_id=&workload= restrict the span listing, and a wired
// SloTracker surfaces as the /statusz "slo" block.
TEST(ObsServer, TracezFiltersAndStatuszSloBlock) {
  MetricsRegistry registry;
  TraceCollector trace;
  SpanContext a{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "1111111111111111", "",
                "w-a"};
  SpanContext b{"bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb", "2222222222222222", "",
                "w-b"};
  trace.AddSpanEvent("POST /prune", "request", MonotonicNowNs(), 1000, a);
  trace.AddSpanEvent("POST /prune", "request", MonotonicNowNs(), 1000, b);
  trace.AddCompleteEvent("anonymous", "stage", MonotonicNowNs(), 100);

  SloTracker slo;
  slo.Record("w-a", 1000, false);

  ObsServerOptions options;
  options.port = 0;
  options.registry = &registry;
  options.trace = &trace;
  options.slo = &slo;
  ObsServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  std::string status_line, body;
  ASSERT_TRUE(HttpGet(server.port(),
                      "/tracez?trace_id=aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                      &status_line, &body));
  EXPECT_NE(body.find("\"trace_id\":\"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\""),
            std::string::npos)
      << body;
  EXPECT_EQ(body.find("bbbbbbbb"), std::string::npos) << body;
  EXPECT_EQ(body.find("anonymous"), std::string::npos) << body;

  ASSERT_TRUE(HttpGet(server.port(), "/tracez?workload=w-b", &status_line,
                      &body));
  EXPECT_NE(body.find("\"workload\":\"w-b\""), std::string::npos) << body;
  EXPECT_EQ(body.find("w-a"), std::string::npos) << body;

  // Unfiltered: everything, the anonymous span included.
  ASSERT_TRUE(HttpGet(server.port(), "/tracez", &status_line, &body));
  EXPECT_NE(body.find("anonymous"), std::string::npos);

  ASSERT_TRUE(HttpGet(server.port(), "/statusz", &status_line, &body));
  EXPECT_NE(body.find("\"slo\":{"), std::string::npos) << body;
  EXPECT_NE(body.find("\"workload\":\"w-a\""), std::string::npos) << body;
  server.Stop();
}

TEST(ObsServer, HealthzFollowsTheCircuitStateCallback) {
  MetricsRegistry registry;
  ObsServerOptions options;
  options.port = 0;
  options.registry = &registry;
  int circuit = 0;  // what a wired CircuitBreaker::state_int() returns
  options.circuit_state = [&circuit] { return circuit; };
  ObsServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  std::string status_line, body;
  ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"circuit\":\"closed\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"circuit_state\":0"), std::string::npos) << body;
  EXPECT_NE(body.find("\"fast_failed\":0"), std::string::npos) << body;

  circuit = 1;  // half-open: degraded but serving
  ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  EXPECT_NE(body.find("\"status\":\"degraded\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"circuit\":\"half-open\""), std::string::npos)
      << body;

  // Open: truthful status plus HTTP 503 so load balancers can act on it.
  circuit = 2;
  registry.GetCounter("xmlproj_circuit_fast_fail_total")->Increment(7);
  ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status_line, &body));
  EXPECT_NE(status_line.find("503"), std::string::npos) << status_line;
  EXPECT_NE(body.find("\"status\":\"open\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"circuit\":\"open\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"circuit_state\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"fast_failed\":7"), std::string::npos) << body;

  // Recovery flips it back to 200 without a restart.
  circuit = 0;
  ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  server.Stop();
}

TEST(ObsServer, StatuszCarriesBuildInfo) {
  MetricsRegistry registry;
  ObsServerOptions options;
  options.port = 0;
  options.registry = &registry;
  ObsServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  std::string status_line, body;
  ASSERT_TRUE(HttpGet(server.port(), "/statusz", &status_line, &body));
  std::string expected = "\"build\":{\"version\":\"";
  expected += XmlprojVersion();
  expected += "\",\"compiler\":";
  EXPECT_NE(body.find(expected), std::string::npos) << body;
  server.Stop();
}

TEST(ObsServer, NotFoundBadMethodAndMalformedRequests) {
  MetricsRegistry registry;
  ObsServerOptions options;
  options.port = 0;
  options.registry = &registry;
  ObsServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  std::string status_line, body;
  ASSERT_TRUE(HttpGet(server.port(), "/nope", &status_line, &body));
  EXPECT_NE(status_line.find("404"), std::string::npos) << status_line;

  std::string response = RawRequest(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("405"), std::string::npos) << response;

  response = RawRequest(server.port(), "complete garbage\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;

  // The server survives all of the above and keeps serving.
  ASSERT_TRUE(HttpGet(server.port(), "/healthz", &status_line, &body));
  EXPECT_NE(status_line.find("200"), std::string::npos);
  server.Stop();
}

TEST(ObsServer, PortInUseFailsStartWithError) {
  MetricsRegistry registry;
  ObsServerOptions options;
  options.port = 0;
  options.registry = &registry;
  ObsServer first;
  std::string error;
  ASSERT_TRUE(first.Start(options, &error)) << error;

  ObsServerOptions clash = options;
  clash.port = first.port();
  ObsServer second;
  error.clear();
  EXPECT_FALSE(second.Start(clash, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(second.running());
  first.Stop();
}

TEST(ObsServer, CleanShutdownWithOpenConnection) {
  MetricsRegistry registry;
  ObsServerOptions options;
  options.port = 0;
  options.registry = &registry;
  ObsServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  // Half-open connection: bytes sent but no request terminator, so the
  // handler is parked in its read loop when Stop() lands.
  int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  const char partial[] = "GET /metrics HTTP/1.1\r\n";
  ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);

  auto begin = std::chrono::steady_clock::now();
  server.Stop();
  auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_FALSE(server.running());
  // The self-pipe wakes the parked read immediately: no poll-interval
  // floor, no waiting out the 2s connection deadline. 500ms is slack
  // for a loaded CI box; the typical latency is sub-millisecond.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            500);
  ::close(fd);
}

// Scrapes racing a live pipeline: 8 workers prune a per-query corpus
// while a scraper thread hammers /metrics and /statusz. Every scrape
// must return 200, and the final /statusz progress counts must sum to
// the corpus size (docs x queries).
TEST(ObsServer, ConcurrentScrapeDuringPipeline) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 6;
  corpus_options.scale = 0.001;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto dtd = LoadXMarkDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  auto projectors = WorkloadProjectors(*dtd, XMarkDashboardWorkload());
  ASSERT_TRUE(projectors.ok()) << projectors.status().ToString();

  MetricsRegistry registry;
  ObsServerOptions server_options;
  server_options.port = 0;
  server_options.registry = &registry;
  ObsServer server;
  std::string error;
  ASSERT_TRUE(server.Start(server_options, &error)) << error;

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> scrape_failures{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      std::string status_line, body;
      if (!HttpGet(server.port(), "/metrics", &status_line, &body) ||
          status_line.find("200") == std::string::npos) {
        scrape_failures.fetch_add(1);
      }
      if (!HttpGet(server.port(), "/statusz", &status_line, &body) ||
          status_line.find("200") == std::string::npos) {
        scrape_failures.fetch_add(1);
      }
      scrapes.fetch_add(2);
    }
  });

  PipelineOptions options;
  options.num_threads = 8;
  options.metrics = &registry;
  options.label_queries = true;
  options.corpus_label = "test";
  auto run = PruneCorpusPerQuery(corpus, *dtd, *projectors, options);
  done.store(true);
  scraper.join();
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(scrape_failures.load(), 0);

  const size_t expected_tasks = corpus.size() * projectors->size();
  EXPECT_EQ(run->summary.tasks, expected_tasks);

  // Post-run /statusz: completed + failed == corpus size, nothing left
  // in flight.
  std::string status_line, body;
  ASSERT_TRUE(HttpGet(server.port(), "/statusz", &status_line, &body));
  std::string expected_progress =
      "\"progress\":{\"tasks\":" + std::to_string(expected_tasks) +
      ",\"completed\":" + std::to_string(expected_tasks) +
      ",\"failed\":0,\"inflight\":0";
  EXPECT_NE(body.find(expected_progress), std::string::npos) << body;

  // Labeled series are visible through the live scrape path.
  ASSERT_TRUE(HttpGet(server.port(), "/metrics", &status_line, &body));
  EXPECT_NE(body.find("xmlproj_pipeline_tasks_total{corpus=\"test\","
                      "query_id=\"0\"}"),
            std::string::npos)
      << body;
  server.Stop();
}

}  // namespace
}  // namespace xmlproj
