// The umbrella header must be self-contained and expose the whole public
// pipeline. This test is the README quickstart, verbatim in spirit.

#include "xmlproj.h"

#include <gtest/gtest.h>

namespace xmlproj {
namespace {

TEST(Umbrella, ReadmeQuickstartPipeline) {
  constexpr char kDtd[] = R"(
    <!ELEMENT library (book*)>
    <!ELEMENT book (title, author+, year?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
  )";
  constexpr char kXml[] =
      "<library><book><title>Inferno</title><author>Dante</author>"
      "<year>1313</year></book></library>";

  Dtd dtd = std::move(ParseDtd(kDtd, "library")).value();
  Document doc = std::move(ParseXml(kXml)).value();
  Interpretation interp = std::move(Validate(doc, dtd)).value();

  ProjectionAnalysis analysis =
      std::move(
          AnalyzeXPathQuery(dtd, "/library/book[author='Dante']/title"))
          .value();
  Document pruned =
      std::move(PruneDocument(doc, interp, analysis.projector)).value();

  XPathEvaluator eval(pruned);
  auto result =
      eval.EvaluateFromRoot(std::move(ParseXPath("/library/book/title"))
                                .value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(1u, result->size());
  EXPECT_EQ("Inferno", pruned.StringValue((*result)[0].node));
  // Year was pruned away.
  EXPECT_EQ(kNullNode == pruned.root(), false);
  EXPECT_EQ(std::string::npos, SerializeDocument(pruned).find("year"));
}

}  // namespace
}  // namespace xmlproj
