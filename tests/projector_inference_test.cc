#include "projection/projector_inference.h"

#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "projection/projection.h"
#include "xpath/xpathl.h"

namespace xmlproj {
namespace {

constexpr char kBookDtd[] = R"(
  <!ELEMENT book (title, author+, year?)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT year (#PCDATA)>
)";

NameSet Infer(const Dtd& dtd, std::string_view lpath, bool materialize) {
  ProjectorInference inference(dtd);
  auto path = ParseLPath(lpath);
  EXPECT_TRUE(path.ok()) << lpath << ": " << path.status().ToString();
  auto result = inference.InferForPath(*path, materialize);
  EXPECT_TRUE(result.ok()) << lpath << ": " << result.status().ToString();
  return std::move(result).value();
}

std::vector<std::string> Names(const Dtd& dtd, const NameSet& set) {
  std::vector<std::string> out;
  set.ForEach([&dtd, &out](NameId n) {
    out.push_back(dtd.production(n).name);
  });
  return out;
}

TEST(ProjectorInference, SimpleChildPath) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  NameSet pi = Infer(dtd, "child::author", /*materialize=*/false);
  EXPECT_EQ((std::vector<std::string>{"book", "author"}), Names(dtd, pi));
}

TEST(ProjectorInference, MaterializationKeepsSubtrees) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  NameSet pi = Infer(dtd, "child::author", /*materialize=*/true);
  EXPECT_EQ((std::vector<std::string>{"book", "author", "author#text"}),
            Names(dtd, pi));
}

TEST(ProjectorInference, TitleAndYearArePruned) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  NameSet pi = Infer(dtd, "child::author", true);
  EXPECT_FALSE(pi.Contains(dtd.NameOfTag("title")));
  EXPECT_FALSE(pi.Contains(dtd.NameOfTag("year")));
}

TEST(ProjectorInference, DescendantKeepsOnlySpine) {
  // §4.2: descendant::node/Path must not keep all descendants — only the
  // names that lead to (or are) matches.
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (a, c)>
    <!ELEMENT a (d?)>
    <!ELEMENT c (e?)>
    <!ELEMENT d EMPTY>
    <!ELEMENT e EMPTY>
  )",
                               "r"))
                .value();
  NameSet pi = Infer(dtd, "descendant::d", false);
  EXPECT_EQ((std::vector<std::string>{"r", "a", "d"}), Names(dtd, pi));
}

TEST(ProjectorInference, DescendantDeepSpine) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (x, y)>
    <!ELEMENT x (x1?)>
    <!ELEMENT x1 (goal?)>
    <!ELEMENT y (y1?)>
    <!ELEMENT y1 EMPTY>
    <!ELEMENT goal (#PCDATA)>
  )",
                               "r"))
                .value();
  NameSet pi = Infer(dtd, "descendant::goal", true);
  EXPECT_EQ((std::vector<std::string>{"r", "x", "x1", "goal", "goal#text"}),
            Names(dtd, pi));
}

TEST(ProjectorInference, AncestorPath) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (m)>
    <!ELEMENT m (l*)>
    <!ELEMENT l (#PCDATA)>
  )",
                               "r"))
                .value();
  NameSet pi = Infer(dtd, "descendant::l/ancestor::m", false);
  EXPECT_EQ((std::vector<std::string>{"r", "m", "l"}), Names(dtd, pi));
}

TEST(ProjectorInference, ConditionRestrictsAndKeepsConditionData) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (a*, b*)>
    <!ELEMENT a (d?, f?)>
    <!ELEMENT b (e?)>
    <!ELEMENT d EMPTY>
    <!ELEMENT e EMPTY>
    <!ELEMENT f EMPTY>
  )",
                               "r"))
                .value();
  // child::node[child::d]: selects a-elements only; the condition needs d.
  NameSet pi = Infer(dtd, "child::node()[child::d]", false);
  EXPECT_EQ((std::vector<std::string>{"r", "a", "d"}), Names(dtd, pi));
  // f is not needed (not selected, not in the condition).
  EXPECT_FALSE(pi.Contains(dtd.NameOfTag("f")));
  EXPECT_FALSE(pi.Contains(dtd.NameOfTag("b")));
}

TEST(ProjectorInference, PaperStrongSpecificationCounterexample) {
  // §4.2: DTD {X -> a[Y,W], W -> c[], Y -> b[Z], Z -> d[]} and query
  // self::a[child::node]. {X,Y} is optimal, but the self::node condition
  // makes the inference include W too (the paper's predicted behaviour:
  // completeness needs strongly-specified queries).
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT c EMPTY>
    <!ELEMENT b (d)>
    <!ELEMENT d EMPTY>
  )",
                               "a"))
                .value();
  NameSet pi = Infer(dtd, "self::a[child::node()]", false);
  EXPECT_TRUE(pi.Contains(dtd.NameOfTag("a")));
  EXPECT_TRUE(pi.Contains(dtd.NameOfTag("b")));
  EXPECT_TRUE(pi.Contains(dtd.NameOfTag("c")));  // the predicted extra
  EXPECT_FALSE(pi.Contains(dtd.NameOfTag("d")));
}

TEST(ProjectorInference, FailingTestKeepsOnlyRoot) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  NameSet pi = Infer(dtd, "child::nonexistent", true);
  EXPECT_EQ((std::vector<std::string>{"book"}), Names(dtd, pi));
}

TEST(ProjectorInference, SelfPathKeepsRootOnly) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  NameSet pi = Infer(dtd, "self::node()", false);
  EXPECT_EQ((std::vector<std::string>{"book"}), Names(dtd, pi));
}

TEST(ProjectorInference, DosKeepsEverythingWhenLast) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  NameSet pi = Infer(dtd, "descendant-or-self::node()", false);
  // Every grammar name except the synthetic #document (which is not
  // subject to pruning).
  EXPECT_EQ(dtd.name_count() - 1, pi.Count());
  EXPECT_FALSE(pi.Contains(dtd.document_name()));
}

TEST(ProjectorInference, UnionOfPaths) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  ProjectorInference inference(dtd);
  std::vector<LPath> paths;
  paths.push_back(std::move(ParseLPath("child::author")).value());
  paths.push_back(std::move(ParseLPath("child::year")).value());
  auto pi = inference.InferForPaths(paths, true);
  ASSERT_TRUE(pi.ok());
  EXPECT_TRUE(pi->Contains(dtd.NameOfTag("author")));
  EXPECT_TRUE(pi->Contains(dtd.NameOfTag("year")));
  EXPECT_FALSE(pi->Contains(dtd.NameOfTag("title")));
}

TEST(ProjectorInference, RecursiveDtd) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT part (part*, name?)>
    <!ELEMENT name (#PCDATA)>
  )",
                               "part"))
                .value();
  NameSet pi = Infer(dtd, "descendant::name", true);
  // Recursion: parts at any depth can lead to name.
  EXPECT_TRUE(pi.Contains(dtd.NameOfTag("part")));
  EXPECT_TRUE(pi.Contains(dtd.NameOfTag("name")));
  EXPECT_TRUE(pi.Contains(dtd.StringNameOf(dtd.NameOfTag("name"))));
}

TEST(ProjectorInference, LongDescendantChainTerminates) {
  // Exercise the memoization: descendant chains over a recursive DTD.
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT a (a*, b*)>
    <!ELEMENT b (a*)>
  )",
                               "a"))
                .value();
  NameSet pi = Infer(dtd,
                     "descendant::node()/descendant::node()/"
                     "descendant::node()/descendant::b/descendant::a",
                     false);
  EXPECT_TRUE(pi.Contains(dtd.NameOfTag("a")));
  EXPECT_TRUE(pi.Contains(dtd.NameOfTag("b")));
}

TEST(ProjectorInference, TextTestPath) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  NameSet pi = Infer(dtd, "child::author/child::text()", false);
  EXPECT_EQ((std::vector<std::string>{"book", "author", "author#text"}),
            Names(dtd, pi));
}

TEST(ProjectorInference, CloseToValidProjectorDropsOrphans) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  ProjectorInference inference(dtd);
  NameSet orphaned(dtd.name_count());
  orphaned.Add(dtd.root());
  // author#text without author: unreachable within the set.
  orphaned.Add(dtd.StringNameOf(dtd.NameOfTag("author")));
  NameSet closed = inference.CloseToValidProjector(orphaned);
  EXPECT_EQ(1u, closed.Count());
  EXPECT_TRUE(closed.Contains(dtd.root()));
}

TEST(ProjectorInference, ProjectorIsChainClosedFromRoot) {
  // Every inferred projector must be a valid type projector (Def 2.6):
  // all names reachable from the root within the projector.
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (a*, b*)>
    <!ELEMENT a (d?, f?)>
    <!ELEMENT b (e?)>
    <!ELEMENT d (#PCDATA)>
    <!ELEMENT e EMPTY>
    <!ELEMENT f EMPTY>
  )",
                               "r"))
                .value();
  ProjectorInference inference(dtd);
  for (const char* q :
       {"descendant::d", "child::a[child::d or child::f]/child::d",
        "descendant::node()/parent::a", "child::node()/child::node()",
        "descendant::text()"}) {
    NameSet pi = Infer(dtd, q, true);
    EXPECT_EQ(pi, inference.CloseToValidProjector(pi)) << q;
  }
}

TEST(AnalyzeXPathQuery, EndToEnd) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  auto analysis = AnalyzeXPathQuery(dtd, "/book/author");
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_TRUE(analysis->projector.Contains(dtd.NameOfTag("author")));
  EXPECT_FALSE(analysis->projector.Contains(dtd.NameOfTag("title")));
  EXPECT_EQ("child::book/child::author", ToString(analysis->approximated));
}

TEST(AnalyzeXPathQueries, WorkloadUnion) {
  Dtd dtd = std::move(ParseDtd(kBookDtd, "book")).value();
  std::vector<std::string> queries = {"/book/author", "//year"};
  auto pi = AnalyzeXPathQueries(dtd, queries);
  ASSERT_TRUE(pi.ok());
  EXPECT_TRUE(pi->Contains(dtd.NameOfTag("author")));
  EXPECT_TRUE(pi->Contains(dtd.NameOfTag("year")));
  EXPECT_FALSE(pi->Contains(dtd.NameOfTag("title")));
  EXPECT_GT(ProjectorSelectivity(dtd, *pi), 0.0);
  EXPECT_LT(ProjectorSelectivity(dtd, *pi), 100.0);
}

}  // namespace
}  // namespace xmlproj
