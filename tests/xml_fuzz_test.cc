// Robustness fuzzing: randomly corrupted XML, DTD and query inputs must
// produce Status errors — never crashes, hangs, or accepted garbage that
// breaks downstream invariants. Runs a few thousand mutations per seed.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "xmark/generator.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"
#include "xquery/parser.h"

namespace xmlproj {
namespace {

std::string Mutate(const std::string& input, Rng* rng) {
  std::string out = input;
  int edits = rng->IntIn(1, 4);
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->Below(out.size());
    switch (rng->IntIn(0, 3)) {
      case 0:  // flip to a random interesting byte
        out[pos] = "<>&\"'/=[]{}()\0x"[rng->Below(14)];
        break;
      case 1:  // delete a span
        out.erase(pos, rng->IntIn(1, 8));
        break;
      case 2:  // duplicate a span
        out.insert(pos, out.substr(pos, rng->IntIn(1, 8)));
        break;
      default:  // truncate
        out.resize(pos);
        break;
    }
  }
  return out;
}

TEST(XmlFuzz, ParserNeverCrashesOnMutatedDocuments) {
  const std::string base =
      "<site><people><person id=\"p0\"><name>Alice &amp; Co</name>"
      "<emailaddress>a@x</emailaddress><profile income=\"90.5\">"
      "<interest category=\"c1\"/><business>No</business></profile>"
      "</person></people><open_auctions><open_auction id=\"o1\">"
      "<initial>12.50</initial><bidder><date>01/02/1999</date>"
      "<time>10:11:12</time><personref person=\"p0\"/>"
      "<increase>3.00</increase></bidder><current>20</current>"
      "<itemref item=\"i4\"/><seller person=\"p0\"/><annotation>"
      "<author person=\"p0\"/><description><text>gold "
      "<keyword>ring</keyword> lot</text></description>"
      "<happiness>7</happiness></annotation><quantity>1</quantity>"
      "<type>Regular</type><interval><start>a</start><end>b</end>"
      "</interval></open_auction></open_auctions></site>";
  Rng rng(0xf00d);
  int parsed_ok = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = Mutate(base, &rng);
    auto result = ParseXml(mutated);
    if (result.ok()) {
      ++parsed_ok;
      // Anything accepted must round-trip through the serializer.
      auto again = ParseXml(SerializeDocument(*result));
      EXPECT_TRUE(again.ok());
    }
  }
  // Some mutations (inside text content) stay well-formed.
  EXPECT_GT(parsed_ok, 0);
  EXPECT_LT(parsed_ok, 2000);
}

TEST(XmlFuzz, DtdParserNeverCrashesOnMutatedDtds) {
  std::string base(XMarkDtdText());
  Rng rng(0xbeef);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = Mutate(base, &rng);
    auto result = ParseDtd(mutated, "site");
    if (result.ok()) {
      // An accepted grammar must be internally consistent.
      EXPECT_LE(result->root(), static_cast<NameId>(result->name_count()));
    }
  }
}

TEST(XmlFuzz, QueryParsersNeverCrashOnMutatedQueries) {
  const std::string base_xpath =
      "/site/people/person[profile/@income > 5000 and "
      "count(watches/watch) >= 2]/name/text()";
  const std::string base_xquery =
      "for $p in /site/people/person where $p/age > 30 "
      "return <x n=\"{$p/name/text()}\">{count($p/watches/watch)}</x>";
  Rng rng(0xcafe);
  for (int i = 0; i < 2000; ++i) {
    (void)ParseXPathExpr(Mutate(base_xpath, &rng));
    (void)ParseXQuery(Mutate(base_xquery, &rng));
  }
}

TEST(XmlFuzz, ValidatorNeverCrashesOnWellFormedGarbage) {
  // Well-formed documents with shuffled structure: validation must reject
  // or accept without crashing, on the real XMark grammar.
  Dtd dtd = std::move(LoadXMarkDtd()).value();
  Rng rng(0xd00d);
  XMarkOptions options;
  options.scale = 0.0005;
  std::string base = GenerateXMarkText(options);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = Mutate(base, &rng);
    auto doc = ParseXml(mutated);
    if (!doc.ok()) continue;
    (void)Validate(*doc, dtd);
  }
}

}  // namespace
}  // namespace xmlproj
