#include "xpath/xpathl.h"

#include <gtest/gtest.h>

#include "xpath/parser.h"

namespace xmlproj {
namespace {

TEST(XPathL, ParseAndPrint) {
  auto p = ParseLPath("child::a/descendant::b[child::c or child::d]");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ("child::a/descendant::b[child::c or child::d]", ToString(*p));
}

TEST(XPathL, AllLAxes) {
  auto p = ParseLPath(
      "self::node()/child::a/descendant::node()/parent::node()/"
      "ancestor::b/descendant-or-self::text()/ancestor-or-self::*");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(7u, p->steps.size());
}

TEST(XPathL, IsSimplePath) {
  auto simple = ParseLPath("child::a/parent::node()");
  ASSERT_TRUE(simple.ok());
  EXPECT_TRUE(IsSimplePath(*simple));
  auto cond = ParseLPath("child::a[child::b]");
  ASSERT_TRUE(cond.ok());
  EXPECT_FALSE(IsSimplePath(*cond));
}

TEST(XPathL, RejectsNonLAxes) {
  EXPECT_FALSE(ParseLPath("following::a").ok());
  EXPECT_FALSE(ParseLPath("preceding-sibling::a").ok());
  EXPECT_FALSE(ParseLPath("@id").ok());
}

TEST(XPathL, RejectsNestedConditions) {
  // Conditions must be simple: no nested predicates.
  EXPECT_FALSE(ParseLPath("child::a[child::b[child::c]]").ok());
}

TEST(XPathL, RejectsNonPathPredicates) {
  EXPECT_FALSE(ParseLPath("child::a[count(child::b) > 1]").ok());
  EXPECT_FALSE(ParseLPath("child::a[1]").ok());
  EXPECT_FALSE(ParseLPath("child::a[child::b and child::c]").ok());
}

TEST(XPathL, AcceptsDisjunctions) {
  auto p = ParseLPath("child::a[child::b or child::c or parent::d]");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(1u, p->steps.size());
  EXPECT_EQ(3u, p->steps[0].cond.size());
}

TEST(XPathL, RejectsAbsolute) {
  EXPECT_FALSE(ParseLPath("/a/b").ok());
}

TEST(XPathL, ValidateRejectsBadAxisInCondition) {
  LPath p = MakeLPath({MakeLStep(Axis::kChild, TestKind::kName, "a")});
  LPath bad_cond =
      MakeLPath({MakeLStep(Axis::kFollowing, TestKind::kNode)});
  p.steps[0].cond.push_back(bad_cond);
  EXPECT_FALSE(ValidateLPath(p).ok());
}

TEST(XPathL, MakeHelpers) {
  LPath p = MakeLPath({MakeLStep(Axis::kDescendant, TestKind::kName, "x"),
                       MakeLStep(Axis::kParent, TestKind::kNode)});
  EXPECT_EQ("descendant::x/parent::node()", ToString(p));
}

}  // namespace
}  // namespace xmlproj
