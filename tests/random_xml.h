// Shared randomized-input generators for property tests: random local
// tree grammars, random valid documents, and random XPath queries.
// Extracted from soundness_property_test.cc so several suites can fuzz
// with identical distributions.

#ifndef XMLPROJ_TESTS_RANDOM_XML_H_
#define XMLPROJ_TESTS_RANDOM_XML_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "dtd/dtd.h"
#include "xml/document.h"
#include "xpath/ast.h"

namespace xmlproj {
namespace testing_random {

constexpr const char* kTags[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
constexpr const char* kWords[] = {"alpha", "beta", "gamma", "42", "7"};

// --- Random local tree grammars ----------------------------------------
//
// Construction invariant guaranteeing that a finite valid document always
// exists: *required* content (bare names, choices, plus-factors) only
// references names with a strictly larger index, while back/self
// references (recursion) are always wrapped in ? or *.
inline Dtd RandomDtd(uint64_t seed, int* name_count_out) {
  Rng rng(seed * 2654435761ull + 1);
  int n = rng.IntIn(3, 8);
  *name_count_out = n;
  DtdBuilder builder;
  std::vector<NameId> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(std::move(builder.DeclareElement(kTags[i])).value());
  }
  for (int i = 0; i < n; ++i) {
    // StringNameFor may declare a new production and reallocate the
    // builder's production storage, so it must run before MutableContent
    // hands out a pointer into that storage.
    int kind = rng.IntIn(0, 9);
    if (kind <= 1 || i == n - 1) {
      if (rng.Chance(1, 2)) {
        // PCDATA leaf.
        NameId text = builder.StringNameFor(ids[i]);
        ContentModel* m = builder.MutableContent(ids[i]);
        m->set_root(m->Star(m->Name(text)));
      }
      // else EMPTY.
      continue;
    }
    if (kind == 2) {
      // Mixed content: (#PCDATA | x | y)*.
      NameId text = builder.StringNameFor(ids[i]);
      ContentModel* m = builder.MutableContent(ids[i]);
      std::vector<int32_t> alts;
      alts.push_back(m->Name(text));
      int extras = rng.IntIn(1, 2);
      for (int k = 0; k < extras; ++k) {
        alts.push_back(m->Name(ids[static_cast<size_t>(
            rng.IntIn(0, n - 1))]));
      }
      m->set_root(m->Star(m->Choice(std::move(alts))));
      continue;
    }
    // Sequence of 1..3 factors.
    ContentModel* m = builder.MutableContent(ids[i]);
    std::vector<int32_t> factors;
    int nf = rng.IntIn(1, 3);
    for (int k = 0; k < nf; ++k) {
      bool forward_only = i + 1 < n;
      int fk = rng.IntIn(0, 5);
      auto forward_name = [&]() {
        return ids[static_cast<size_t>(rng.IntIn(i + 1, n - 1))];
      };
      auto any_name = [&]() {
        return ids[static_cast<size_t>(rng.IntIn(0, n - 1))];
      };
      switch (fk) {
        case 0:  // required single name (forward)
        case 1:
          if (forward_only) {
            factors.push_back(m->Name(forward_name()));
          } else {
            factors.push_back(m->Opt(m->Name(any_name())));
          }
          break;
        case 2:  // optional (any)
          factors.push_back(m->Opt(m->Name(any_name())));
          break;
        case 3:  // star (any) — possibly recursive
          factors.push_back(m->Star(m->Name(any_name())));
          break;
        case 4:  // plus (forward)
          if (forward_only) {
            factors.push_back(m->Plus(m->Name(forward_name())));
          } else {
            factors.push_back(m->Star(m->Name(any_name())));
          }
          break;
        case 5:  // starred choice of two (any): *-guarded union
          factors.push_back(m->Star(
              m->Choice({m->Name(any_name()), m->Name(any_name())})));
          break;
      }
    }
    m->set_root(m->Seq(std::move(factors)));
  }
  return std::move(builder.Build(kTags[0])).value();
}

// --- Random valid documents ---------------------------------------------

class DocGenerator {
 public:
  DocGenerator(const Dtd& dtd, uint64_t seed) : dtd_(dtd), rng_(seed) {}

  Result<Document> Generate() {
    builder_ = DocumentBuilder();
    nodes_ = 0;
    GenerateElement(dtd_.root(), 0);
    return builder_.Finish();
  }

 private:
  void GenerateElement(NameId name, int depth) {
    ++nodes_;
    const Production& p = dtd_.production(name);
    builder_.StartElement(p.tag);
    if (!p.content.empty_model()) {
      GenerateRegex(name, p.content, p.content.root(), depth + 1);
    }
    builder_.EndElement();
  }

  void GenerateRegex(NameId owner, const ContentModel& model, int32_t index,
                     int depth) {
    const RegexNode& node = model.node(index);
    bool minimal = depth > 8 || nodes_ > 4000;
    switch (node.kind) {
      case RegexKind::kEpsilon:
      case RegexKind::kAny:
        break;
      case RegexKind::kName:
        if (dtd_.IsStringName(node.name)) {
          ++nodes_;
          builder_.AddText(
              kWords[rng_.Below(sizeof(kWords) / sizeof(kWords[0]))]);
        } else {
          GenerateElement(node.name, depth);
        }
        break;
      case RegexKind::kSeq:
        for (int32_t c : node.children) {
          GenerateRegex(owner, model, c, depth);
        }
        break;
      case RegexKind::kChoice: {
        size_t pick = rng_.Below(node.children.size());
        GenerateRegex(owner, model, node.children[pick], depth);
        break;
      }
      case RegexKind::kStar: {
        int reps = minimal ? 0 : rng_.IntIn(0, 3);
        for (int k = 0; k < reps; ++k) {
          GenerateRegex(owner, model, node.children[0], depth);
        }
        break;
      }
      case RegexKind::kPlus: {
        int reps = minimal ? 1 : rng_.IntIn(1, 3);
        for (int k = 0; k < reps; ++k) {
          GenerateRegex(owner, model, node.children[0], depth);
        }
        break;
      }
      case RegexKind::kOpt:
        if (!minimal && rng_.Chance(1, 2)) {
          GenerateRegex(owner, model, node.children[0], depth);
        }
        break;
    }
  }

  const Dtd& dtd_;
  Rng rng_;
  DocumentBuilder builder_;
  size_t nodes_ = 0;
};

// --- Random queries -------------------------------------------------------

class QueryGenerator {
 public:
  QueryGenerator(int tag_count, uint64_t seed)
      : tag_count_(tag_count), rng_(seed) {}

  LocationPath Generate() {
    LocationPath path;
    path.start = PathStart::kRoot;
    int steps = rng_.IntIn(1, 4);
    for (int i = 0; i < steps; ++i) {
      path.steps.push_back(RandomStep(/*allow_predicates=*/true));
    }
    return path;
  }

 private:
  Axis RandomAxis() {
    switch (rng_.IntIn(0, 19)) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4:
      case 5:
        return Axis::kChild;
      case 6:
      case 7:
      case 8:
        return Axis::kDescendant;
      case 9:
      case 10:
        return Axis::kDescendantOrSelf;
      case 11:
      case 12:
        return Axis::kParent;
      case 13:
        return Axis::kAncestor;
      case 14:
        return Axis::kAncestorOrSelf;
      case 15:
        return Axis::kSelf;
      case 16:
        return Axis::kFollowingSibling;
      case 17:
        return Axis::kPrecedingSibling;
      case 18:
        return Axis::kFollowing;
      default:
        return Axis::kPreceding;
    }
  }

  NodeTest RandomTest() {
    NodeTest test;
    int k = rng_.IntIn(0, 9);
    if (k <= 4) {
      test.kind = TestKind::kName;
      test.name = kTags[rng_.Below(static_cast<uint64_t>(tag_count_))];
    } else if (k <= 6) {
      test.kind = TestKind::kNode;
    } else if (k <= 8) {
      test.kind = TestKind::kAnyElement;
    } else {
      test.kind = TestKind::kText;
    }
    return test;
  }

  Step RandomStep(bool allow_predicates) {
    Step step;
    step.axis = RandomAxis();
    step.test = RandomTest();
    if (step.test.kind == TestKind::kText &&
        (step.axis == Axis::kParent || step.axis == Axis::kAncestor)) {
      step.test.kind = TestKind::kNode;  // text() never matches upward
    }
    if (allow_predicates && rng_.Chance(3, 10)) {
      step.predicates.push_back(RandomPredicate());
    }
    return step;
  }

  LocationPath RandomSubPath() {
    LocationPath p;
    p.start = PathStart::kContext;
    int steps = rng_.IntIn(1, 2);
    for (int i = 0; i < steps; ++i) {
      // Nested predicates with probability 1/4.
      p.steps.push_back(RandomStep(rng_.Chance(1, 4)));
    }
    return p;
  }

  ExprPtr RandomPredicate() {
    switch (rng_.IntIn(0, 6)) {
      case 0:  // structural path
      case 1:
        return MakePath(RandomSubPath());
      case 2: {  // value comparison
        return MakeBinary(
            BinaryOp::kEq, MakePath(RandomSubPath()),
            MakeLiteral(kWords[rng_.Below(sizeof(kWords) /
                                          sizeof(kWords[0]))]));
      }
      case 3: {  // count(path) >= k
        std::vector<ExprPtr> args;
        args.push_back(MakePath(RandomSubPath()));
        return MakeBinary(BinaryOp::kGe,
                          MakeFunction("count", std::move(args)),
                          MakeNumber(rng_.IntIn(0, 2)));
      }
      case 4: {  // not(path)
        std::vector<ExprPtr> args;
        args.push_back(MakePath(RandomSubPath()));
        return MakeFunction("not", std::move(args));
      }
      case 5:  // position() = 1
        return MakeBinary(BinaryOp::kEq, MakeFunction("position", {}),
                          MakeNumber(1));
      default: {  // disjunction of two paths
        return MakeBinary(BinaryOp::kOr, MakePath(RandomSubPath()),
                          MakePath(RandomSubPath()));
      }
    }
  }

  int tag_count_;
  Rng rng_;
};


}  // namespace testing_random
}  // namespace xmlproj

#endif  // XMLPROJ_TESTS_RANDOM_XML_H_
