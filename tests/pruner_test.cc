#include "projection/pruner.h"

#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "projection/projection.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

constexpr char kBookDtd[] = R"(
  <!ELEMENT library (book*)>
  <!ELEMENT book (title, author+, year?)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT year (#PCDATA)>
  <!ATTLIST book isbn CDATA #IMPLIED>
)";

constexpr char kLibraryXml[] =
    R"(<library><book isbn="1"><title>Inferno</title><author>Dante</author>)"
    R"(<year>1313</year></book><book isbn="2"><title>Decameron</title>)"
    R"(<author>Boccaccio</author></book></library>)";

struct Fixture {
  Dtd dtd;
  Document doc;
  Interpretation interp;
};

Fixture Load() {
  Fixture f{std::move(ParseDtd(kBookDtd, "library")).value(),
            std::move(ParseXml(kLibraryXml)).value(),
            {}};
  f.interp = std::move(Validate(f.doc, f.dtd)).value();
  return f;
}

NameSet ProjectorFor(const Dtd& dtd, std::string_view query) {
  auto analysis = AnalyzeXPathQuery(dtd, query);
  EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
  return analysis->projector;
}

TEST(PruneDocument, DropsUnprojectedSubtrees) {
  Fixture f = Load();
  NameSet pi = ProjectorFor(f.dtd, "/library/book/author");
  PruneStats stats;
  auto pruned = PruneDocument(f.doc, f.interp, pi, &stats);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(
      R"(<library><book isbn="1"><author>Dante</author></book>)"
      R"(<book isbn="2"><author>Boccaccio</author></book></library>)",
      SerializeDocument(*pruned));
  EXPECT_LT(stats.kept_nodes, stats.input_nodes);
  EXPECT_EQ(f.doc.content_node_count(), stats.input_nodes);
  EXPECT_EQ(pruned->content_node_count(), stats.kept_nodes);
}

TEST(PruneDocument, ProjectionIsSmaller) {
  Fixture f = Load();
  NameSet pi = ProjectorFor(f.dtd, "/library/book/year");
  auto pruned = PruneDocument(f.doc, f.interp, pi);
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->MemoryBytes(), f.doc.MemoryBytes());
  EXPECT_EQ(R"(<library><book isbn="1"><year>1313</year></book>)"
            R"(<book isbn="2"/></library>)",
            SerializeDocument(*pruned));
}

TEST(PruneDocument, NewToOldMapping) {
  Fixture f = Load();
  NameSet pi = ProjectorFor(f.dtd, "/library/book/author");
  std::vector<NodeId> new_to_old;
  auto pruned = PruneDocument(f.doc, f.interp, pi, nullptr, &new_to_old);
  ASSERT_TRUE(pruned.ok());
  ASSERT_EQ(pruned->size(), new_to_old.size());
  for (NodeId id = 1; id < pruned->size(); ++id) {
    NodeId old_id = new_to_old[id];
    EXPECT_EQ(pruned->kind(id), f.doc.kind(old_id));
    if (pruned->kind(id) == NodeKind::kElement) {
      EXPECT_EQ(pruned->tag_name(id), f.doc.tag_name(old_id));
    } else if (pruned->kind(id) == NodeKind::kText) {
      EXPECT_EQ(pruned->text(id), f.doc.text(old_id));
    }
  }
}

TEST(StreamingPruner, MatchesDomPruner) {
  Fixture f = Load();
  for (const char* query :
       {"/library/book/author", "/library/book[year]/title",
        "//year", "/library/book/@isbn", "//author/text()"}) {
    NameSet pi = ProjectorFor(f.dtd, query);
    auto dom_pruned = PruneDocument(f.doc, f.interp, pi);
    ASSERT_TRUE(dom_pruned.ok()) << query;
    PruneStats stream_stats;
    auto stream_pruned =
        PruneViaStreaming(f.doc, f.dtd, pi, &stream_stats);
    ASSERT_TRUE(stream_pruned.ok()) << query;
    EXPECT_EQ(SerializeDocument(*dom_pruned),
              SerializeDocument(*stream_pruned))
        << query;
    EXPECT_EQ(stream_pruned->content_node_count(),
              stream_stats.kept_nodes);
  }
}

TEST(StreamingPruner, PruneWhileParsing) {
  Fixture f = Load();
  NameSet pi = ProjectorFor(f.dtd, "/library/book/title");
  PruneStats stats;
  auto pruned = ParseAndPrune(kLibraryXml, f.dtd, pi, &stats);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(
      R"(<library><book isbn="1"><title>Inferno</title></book>)"
      R"(<book isbn="2"><title>Decameron</title></book></library>)",
      SerializeDocument(*pruned));
  EXPECT_GT(stats.input_text_bytes, stats.kept_text_bytes);
}

TEST(StreamingPruner, UndeclaredElementFails) {
  Fixture f = Load();
  NameSet pi = f.dtd.AllNames();
  auto result = ParseAndPrune("<library><ghost/></library>", f.dtd, pi);
  EXPECT_FALSE(result.ok());
}

TEST(StreamingPruner, FullProjectorIsIdentity) {
  Fixture f = Load();
  NameSet all = f.dtd.AllNames();
  auto pruned = PruneViaStreaming(f.doc, f.dtd, all);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(SerializeDocument(f.doc), SerializeDocument(*pruned));
}

TEST(StreamingPruner, SkipsNestedPrunedSubtrees) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (keep, drop)>
    <!ELEMENT keep (#PCDATA)>
    <!ELEMENT drop (keep*)>
  )",
                               "r"))
                .value();
  // Projector without 'drop': the keep-elements *inside* drop must not
  // resurface (the skip counter must cover nested kept-name elements).
  NameSet pi(dtd.name_count());
  pi.Add(dtd.root());
  pi.Add(dtd.NameOfTag("keep"));
  pi.Add(dtd.StringNameOf(dtd.NameOfTag("keep")));
  auto pruned = ParseAndPrune(
      "<r><keep>a</keep><drop><keep>b</keep><keep>c</keep></drop></r>", dtd,
      pi);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ("<r><keep>a</keep></r>", SerializeDocument(*pruned));
}

TEST(Lemma28, ProjectionIsSmallerOrEqual) {
  // Lemma 2.8: t\π ≤ t — the projection never adds nodes and every kept
  // node existed in t (checked via the id mapping's monotonicity).
  Fixture f = Load();
  for (const char* query : {"//author", "//book", "/library"}) {
    NameSet pi = ProjectorFor(f.dtd, query);
    std::vector<NodeId> new_to_old;
    auto pruned = PruneDocument(f.doc, f.interp, pi, nullptr, &new_to_old);
    ASSERT_TRUE(pruned.ok());
    EXPECT_LE(pruned->size(), f.doc.size());
    for (size_t i = 2; i < new_to_old.size(); ++i) {
      EXPECT_LT(new_to_old[i - 1], new_to_old[i]);  // order preserved
    }
  }
}

}  // namespace
}  // namespace xmlproj
