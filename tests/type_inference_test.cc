#include "projection/type_inference.h"

#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "xpath/xpathl.h"

namespace xmlproj {
namespace {

// The paper's §4.1 motivating grammar (rooted at X):
//   {X -> c[Y, Z],  Y -> a[W, String],  Z -> b[String],  W -> d[Y?]}
// Built programmatically because a[W, String] mixes ordered PCDATA, which
// DTD syntax cannot express.
struct Paper41 {
  Dtd dtd;
  NameId X, Y, Z, W, Ys, Zs;
};

Paper41 BuildPaper41() {
  DtdBuilder b;
  NameId X = std::move(b.DeclareElement("c")).value();
  NameId Y = std::move(b.DeclareElement("a")).value();
  NameId Z = std::move(b.DeclareElement("b")).value();
  NameId W = std::move(b.DeclareElement("d")).value();
  NameId Ys = b.StringNameFor(Y);
  NameId Zs = b.StringNameFor(Z);
  {
    ContentModel* m = b.MutableContent(X);
    m->set_root(m->Seq({m->Name(Y), m->Name(Z)}));
  }
  {
    ContentModel* m = b.MutableContent(Y);
    m->set_root(m->Seq({m->Name(W), m->Name(Ys)}));
  }
  {
    ContentModel* m = b.MutableContent(Z);
    m->set_root(m->Name(Zs));
  }
  {
    ContentModel* m = b.MutableContent(W);
    m->set_root(m->Opt(m->Name(Y)));
  }
  Paper41 out{std::move(b.Build("c")).value(), X, Y, Z, W, Ys, Zs};
  return out;
}

NameSet TypeOf(const Dtd& dtd, std::string_view lpath) {
  TypeInference inference(dtd);
  auto path = ParseLPath(lpath);
  EXPECT_TRUE(path.ok()) << lpath << ": " << path.status().ToString();
  return inference.InferPath(inference.InitialEnv(), *path).type;
}

TEST(TypeInference, Paper41ContextMakesParentPrecise) {
  Paper41 g = BuildPaper41();
  // Without contexts, self::c/child::a/parent::node would be {X, W}; the
  // context intersection yields the precise {X}.
  NameSet t = TypeOf(g.dtd, "self::c/child::a/parent::node()");
  EXPECT_EQ(NameSet::Of(g.dtd.name_count(), {g.X}), t);
}

TEST(TypeInference, Paper41RawAxisIsImprecise) {
  Paper41 g = BuildPaper41();
  TypeInference inference(g.dtd);
  // A_E({Y}, parent) alone = {X, W}: the motivation for contexts.
  NameSet y(g.dtd.name_count());
  y.Add(g.Y);
  EXPECT_EQ(NameSet::Of(g.dtd.name_count(), {g.X, g.W}),
            inference.AxisSet(y, Axis::kParent));
}

TEST(TypeInference, SingleSteps) {
  Paper41 g = BuildPaper41();
  size_t n = g.dtd.name_count();
  EXPECT_EQ(NameSet::Of(n, {g.Y, g.Z}), TypeOf(g.dtd, "child::node()"));
  EXPECT_EQ(NameSet::Of(n, {g.Y}), TypeOf(g.dtd, "child::a"));
  EXPECT_EQ(NameSet::Of(n, {}), TypeOf(g.dtd, "child::d"));
  EXPECT_EQ(NameSet::Of(n, {g.X}), TypeOf(g.dtd, "self::node()"));
  EXPECT_EQ(NameSet::Of(n, {}), TypeOf(g.dtd, "self::text()"));
  // descendants of X: everything.
  EXPECT_EQ(NameSet::Of(n, {g.Y, g.Z, g.W, g.Ys, g.Zs}),
            TypeOf(g.dtd, "descendant::node()"));
  EXPECT_EQ(NameSet::Of(n, {g.Ys, g.Zs}),
            TypeOf(g.dtd, "descendant::text()"));
  EXPECT_EQ(NameSet::Of(n, {g.Y, g.Z, g.W}),
            TypeOf(g.dtd, "descendant::*"));
}

TEST(TypeInference, UpwardFromRoot) {
  Paper41 g = BuildPaper41();
  // Climbing above the root element reaches the (synthetic) document
  // name; climbing further reaches nothing.
  NameId doc = g.dtd.document_name();
  EXPECT_EQ(NameSet::Of(g.dtd.name_count(), {doc}),
            TypeOf(g.dtd, "parent::node()"));
  EXPECT_EQ(NameSet::Of(g.dtd.name_count(), {doc}),
            TypeOf(g.dtd, "ancestor::node()"));
  EXPECT_EQ(NameSet::Of(g.dtd.name_count(), {g.X, doc}),
            TypeOf(g.dtd, "ancestor-or-self::node()"));
  EXPECT_TRUE(TypeOf(g.dtd, "parent::node()/parent::node()").Empty());
  // The document node fails element tests.
  EXPECT_TRUE(TypeOf(g.dtd, "parent::*").Empty());
}

TEST(TypeInference, RecursiveBackwardImprecision) {
  // Second §4.1 example: {X -> c[Y | Z], Y -> a[Y*, String],
  // Z -> b[String]}. Recursion + backward axes lose completeness:
  // self::c/child::a/parent::node types to {X, Y}, not the precise {X}.
  DtdBuilder b;
  NameId X = std::move(b.DeclareElement("c")).value();
  NameId Y = std::move(b.DeclareElement("a")).value();
  NameId Z = std::move(b.DeclareElement("b")).value();
  NameId Ys = b.StringNameFor(Y);
  NameId Zs = b.StringNameFor(Z);
  {
    ContentModel* m = b.MutableContent(X);
    m->set_root(m->Choice({m->Name(Y), m->Name(Z)}));
  }
  {
    ContentModel* m = b.MutableContent(Y);
    m->set_root(m->Seq({m->Star(m->Name(Y)), m->Name(Ys)}));
  }
  {
    ContentModel* m = b.MutableContent(Z);
    m->set_root(m->Name(Zs));
  }
  Dtd dtd = std::move(b.Build("c")).value();
  EXPECT_TRUE(dtd.IsRecursive());
  EXPECT_FALSE(dtd.IsStarGuarded());

  NameSet t = TypeOf(dtd, "self::c/child::a/parent::node()");
  // Soundness: X must be present. The paper predicts the imprecision
  // {X, Y} here.
  EXPECT_TRUE(t.Contains(X));
  EXPECT_TRUE(t.Contains(Y));
  EXPECT_FALSE(t.Contains(Z));
  EXPECT_FALSE(t.Contains(Zs));
  (void)Ys;
}

TEST(TypeInference, EmptyQueryTypeForNonGuardedUnion) {
  // First completeness counterexample: self::c[child::a]/child::b has an
  // empty semantics on {X -> c[Y | Z], ...} but a non-empty type (the
  // union is not *-guarded). We verify the inferred type is the sound
  // over-approximation the paper describes.
  DtdBuilder b;
  NameId X = std::move(b.DeclareElement("c")).value();
  NameId Y = std::move(b.DeclareElement("a")).value();
  NameId Z = std::move(b.DeclareElement("b")).value();
  {
    ContentModel* m = b.MutableContent(X);
    m->set_root(m->Choice({m->Name(Y), m->Name(Z)}));
  }
  Dtd dtd = std::move(b.Build("c")).value();
  NameSet t = TypeOf(dtd, "self::c[child::a]/child::b");
  EXPECT_TRUE(t.Contains(Z));  // incomplete but sound
  (void)X;
  (void)Y;
}

TEST(TypeInference, ConditionFiltersNames) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (a*, b*)>
    <!ELEMENT a (d?)>
    <!ELEMENT b (e?)>
    <!ELEMENT d EMPTY>
    <!ELEMENT e EMPTY>
  )",
                               "r"))
                .value();
  // child::node[child::d]: only a-elements can have d children.
  NameSet t = TypeOf(dtd, "child::node()[child::d]");
  EXPECT_EQ(NameSet::Of(dtd.name_count(), {dtd.NameOfTag("a")}), t);

  // Disjunction: a or b.
  NameSet t2 = TypeOf(dtd, "child::node()[child::d or child::e]");
  EXPECT_EQ(NameSet::Of(dtd.name_count(),
                        {dtd.NameOfTag("a"), dtd.NameOfTag("b")}),
            t2);

  // Upward condition.
  NameSet t3 = TypeOf(dtd, "descendant::node()[parent::a]");
  EXPECT_EQ(NameSet::Of(dtd.name_count(), {dtd.NameOfTag("d")}), t3);
}

TEST(TypeInference, ContextNarrowsThroughConditions) {
  // Paper41 again: condition evaluation must use per-name contexts.
  Paper41 g = BuildPaper41();
  NameSet t = TypeOf(g.dtd, "child::a/child::d[parent::a]");
  EXPECT_EQ(NameSet::Of(g.dtd.name_count(), {g.W}), t);
  NameSet t2 = TypeOf(g.dtd, "child::a/child::d[parent::b]");
  EXPECT_TRUE(t2.Empty());
}

TEST(TypeInference, ParentAmbiguousImprecision) {
  // §4.1 third example: {X -> a[Y,Z], Y -> b[Z], Z -> c[]}. The query
  // self::a/child::b/child::c/parent::node should ideally type {Y}; the
  // name-set contexts yield {X, Y}.
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b (c)>
    <!ELEMENT c EMPTY>
  )",
                               "a"))
                .value();
  EXPECT_FALSE(dtd.IsParentUnambiguous());
  NameSet t = TypeOf(dtd, "self::a/child::b/child::c/parent::node()");
  EXPECT_TRUE(t.Contains(dtd.NameOfTag("b")));  // the precise answer
  EXPECT_TRUE(t.Contains(dtd.NameOfTag("a")));  // the predicted imprecision
}

TEST(TypeInference, EmptyEnvironmentIsFixpoint) {
  Paper41 g = BuildPaper41();
  NameSet t = TypeOf(g.dtd, "child::zzz/descendant::node()");
  EXPECT_TRUE(t.Empty());
}

TEST(TypeInference, DosAndAos) {
  Dtd dtd = std::move(ParseDtd(R"(
    <!ELEMENT r (m)>
    <!ELEMENT m (l*)>
    <!ELEMENT l (#PCDATA)>
  )",
                               "r"))
                .value();
  size_t n = dtd.name_count();
  NameId r = dtd.NameOfTag("r");
  NameId m = dtd.NameOfTag("m");
  NameId l = dtd.NameOfTag("l");
  EXPECT_EQ(NameSet::Of(n, {r, m, l, dtd.StringNameOf(l)}),
            TypeOf(dtd, "descendant-or-self::node()"));
  EXPECT_EQ(NameSet::Of(n, {m}),
            TypeOf(dtd, "descendant-or-self::m"));
  NameId doc = dtd.document_name();
  EXPECT_EQ(NameSet::Of(n, {r, m, doc}),
            TypeOf(dtd, "child::m/child::l/ancestor::node()"));
  EXPECT_EQ(NameSet::Of(n, {r, m, l, doc}),
            TypeOf(dtd, "child::m/child::l/ancestor-or-self::node()"));
}

}  // namespace
}  // namespace xmlproj
