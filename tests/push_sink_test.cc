// Tests for push-mode telemetry (obs/push.h): statsd line formatting and
// the MetricLabels → DogStatsD tag mapping, real UDP framing against a
// loopback receiver (including datagram packing), JSONL batch shape,
// counter-delta semantics across flushes, histogram synthetics, and the
// flusher lifecycle (interval flushes plus the guaranteed final flush).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/push.h"
#include "obs/trace.h"

namespace xmlproj {
namespace {

// A bound loopback UDP receiver for asserting what StatsdSink actually
// puts on the wire.
class UdpReceiver {
 public:
  UdpReceiver() {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~UdpReceiver() {
    if (fd_ >= 0) ::close(fd_);
  }

  uint16_t port() const { return port_; }

  // One datagram as a string; "" on timeout.
  std::string Receive() {
    char buf[65536];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return "";
    return std::string(buf, static_cast<size_t>(n));
  }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

std::string Target(const UdpReceiver& rx) {
  return "127.0.0.1:" + std::to_string(rx.port());
}

PushSample Sample(const std::string& name, double value, bool counter,
                  MetricLabels labels = {}) {
  PushSample s;
  s.name = name;
  s.labels = std::move(labels);
  s.value = value;
  s.is_counter = counter;
  return s;
}

// A sink that remembers every batch it was handed.
class CaptureSink : public PushSink {
 public:
  bool Push(const PushBatch& batch) override {
    batches.push_back(batch);
    return ok;
  }
  std::string Describe() const override { return "capture://"; }

  // Latest value for a (name, no-labels) series; NaN-free: 0 + found flag.
  bool Find(const std::string& name, double* value) const {
    for (auto it = batches.rbegin(); it != batches.rend(); ++it) {
      for (const PushSample& s : it->samples) {
        if (s.name == name && s.labels.empty()) {
          *value = s.value;
          return true;
        }
      }
    }
    return false;
  }

  std::vector<PushBatch> batches;
  bool ok = true;
};

TEST(DecodeMetricLabelsTest, RoundTripsEncoderOutput) {
  MetricLabels labels = {{"corpus", "xmark"}, {"query_id", "3"}};
  MetricLabels decoded = DecodeMetricLabels(EncodeMetricLabels(labels));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].key, "corpus");
  EXPECT_EQ(decoded[0].value, "xmark");
  EXPECT_EQ(decoded[1].key, "query_id");
  EXPECT_EQ(decoded[1].value, "3");
}

TEST(DecodeMetricLabelsTest, UnescapesQuotesBackslashesNewlines) {
  MetricLabels labels = {{"path", "a\\b\"c\nd"}};
  MetricLabels decoded = DecodeMetricLabels(EncodeMetricLabels(labels));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].value, "a\\b\"c\nd");
}

TEST(StatsdFormatTest, CounterAndGaugeLines) {
  EXPECT_EQ(StatsdSink::FormatLine(Sample("xmlproj_tasks_total", 7, true)),
            "xmlproj_tasks_total:7|c");
  EXPECT_EQ(StatsdSink::FormatLine(Sample("xmlproj_threads", 4, false)),
            "xmlproj_threads:4|g");
}

TEST(StatsdFormatTest, LabelsBecomeDogStatsdTags) {
  std::string line = StatsdSink::FormatLine(Sample(
      "xmlproj_pipeline_tasks_total", 5, true,
      {{"corpus", "xmark"}, {"query_id", "2"}}));
  EXPECT_EQ(line,
            "xmlproj_pipeline_tasks_total:5|c|#corpus:xmark,query_id:2");
}

TEST(StatsdFormatTest, TagValuesSanitizedForTheLineProtocol) {
  // ':' '|' ',' '#' '\n' '@' would corrupt statsd framing — replaced.
  std::string line = StatsdSink::FormatLine(
      Sample("m", 1, true, {{"k", "a:b|c,d#e\nf@g"}}));
  EXPECT_EQ(line, "m:1|c|#k:a_b_c_d_e_f_g");
}

TEST(StatsdSinkTest, RejectsMalformedTargets) {
  StatsdSink sink;
  std::string error;
  EXPECT_FALSE(sink.Open("no-port-here", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(sink.Open(":8125", &error));
  EXPECT_FALSE(sink.Open("localhost:", &error));
  EXPECT_FALSE(sink.Open("localhost:notaport", &error));
}

TEST(StatsdSinkTest, ShipsLinesOverLoopbackUdp) {
  UdpReceiver rx;
  StatsdSink sink;
  std::string error;
  ASSERT_TRUE(sink.Open(Target(rx), &error)) << error;

  PushBatch batch;
  batch.samples.push_back(Sample("xmlproj_pipeline_tasks_total", 8, true,
                                 {{"corpus", "smoke"}}));
  batch.samples.push_back(Sample("xmlproj_pool_threads", 2, false));
  ASSERT_TRUE(sink.Push(batch));
  EXPECT_EQ(sink.datagrams_sent(), 1u);

  std::string datagram = rx.Receive();
  EXPECT_NE(datagram.find(
                "xmlproj_pipeline_tasks_total:8|c|#corpus:smoke"),
            std::string::npos)
      << datagram;
  EXPECT_NE(datagram.find("xmlproj_pool_threads:2|g"), std::string::npos)
      << datagram;
}

TEST(StatsdSinkTest, PacksWithoutSplittingLinesAcrossDatagrams) {
  UdpReceiver rx;
  StatsdSink sink;
  sink.max_datagram_bytes = 48;  // force multi-datagram flushes
  std::string error;
  ASSERT_TRUE(sink.Open(Target(rx), &error)) << error;

  PushBatch batch;
  for (int i = 0; i < 6; ++i) {
    batch.samples.push_back(
        Sample("xmlproj_metric_number_" + std::to_string(i), i, true));
  }
  ASSERT_TRUE(sink.Push(batch));
  EXPECT_GT(sink.datagrams_sent(), 1u);

  // Reassemble and check every line arrived exactly once, intact.
  std::string all;
  for (uint64_t i = 0; i < sink.datagrams_sent(); ++i) {
    std::string d = rx.Receive();
    ASSERT_LE(d.size(), 48u);
    all += d;
    if (!all.empty() && all.back() != '\n') all += '\n';
  }
  for (int i = 0; i < 6; ++i) {
    std::string line =
        "xmlproj_metric_number_" + std::to_string(i) + ":" +
        std::to_string(i) + "|c";
    EXPECT_NE(all.find(line), std::string::npos) << all;
  }
}

TEST(JsonlFileSinkTest, FormatBatchIsOtlpShaped) {
  PushBatch batch;
  batch.unix_ms = 1234;
  batch.sequence = 2;
  batch.samples.push_back(Sample("xmlproj_pipeline_tasks_total", 8, true,
                                 {{"corpus", "smoke"}}));
  batch.samples.push_back(Sample("xmlproj_pool_threads", 2, false));
  std::string json = JsonlFileSink::FormatBatch(batch);
  EXPECT_NE(json.find("\"service.name\":\"xmlproj\""), std::string::npos);
  EXPECT_NE(json.find("\"time_unix_ms\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"sequence\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"xmlproj_pipeline_tasks_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"temporality\":\"delta\""), std::string::npos);
  EXPECT_NE(json.find("\"attributes\":{\"corpus\":\"smoke\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  // One line — JSONL must never embed a raw newline.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(PushFlusherTest, CountersShipDeltasAndIdleSeriesGoQuiet) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("xmlproj_test_total");
  c->Increment(5);

  CaptureSink sink;
  PushFlusher flusher;
  PushFlusherOptions options;
  options.registry = &registry;
  options.sinks = {&sink};
  // No Start: drive flushes synchronously for determinism.

  // First flush ships the full value as the first delta.
  // (FlushNow works without Start, but it needs options; emulate the
  // wiring by starting with a huge interval so the loop never fires.)
  options.interval_ms = 3600 * 1000;
  std::string error;
  ASSERT_TRUE(flusher.Start(options, &error)) << error;
  ASSERT_TRUE(flusher.FlushNow());
  double v = 0;
  ASSERT_TRUE(sink.Find("xmlproj_test_total", &v));
  EXPECT_EQ(v, 5);

  // Second flush after +3: delta, not level.
  c->Increment(3);
  sink.batches.clear();
  ASSERT_TRUE(flusher.FlushNow());
  ASSERT_TRUE(sink.Find("xmlproj_test_total", &v));
  EXPECT_EQ(v, 3);

  // Third flush with no change: the series is skipped entirely.
  sink.batches.clear();
  ASSERT_TRUE(flusher.FlushNow());
  EXPECT_FALSE(sink.Find("xmlproj_test_total", &v));

  flusher.Stop();
}

TEST(PushFlusherTest, LabeledSeriesKeepIndependentDeltas) {
  MetricsRegistry registry;
  MetricLabels a = {{"query_id", "1"}};
  MetricLabels b = {{"query_id", "2"}};
  registry.GetCounter("xmlproj_q_total", a)->Increment(10);
  registry.GetCounter("xmlproj_q_total", b)->Increment(1);

  CaptureSink sink;
  PushFlusher flusher;
  PushFlusherOptions options;
  options.registry = &registry;
  options.sinks = {&sink};
  options.interval_ms = 3600 * 1000;
  std::string error;
  ASSERT_TRUE(flusher.Start(options, &error)) << error;
  ASSERT_TRUE(flusher.FlushNow());

  registry.GetCounter("xmlproj_q_total", b)->Increment(4);
  sink.batches.clear();
  ASSERT_TRUE(flusher.FlushNow());

  // Only series b moved; its delta is 4 and series a is absent.
  ASSERT_EQ(sink.batches.size(), 1u);
  size_t seen = 0;
  for (const PushSample& s : sink.batches[0].samples) {
    if (s.name != "xmlproj_q_total") continue;
    ++seen;
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_EQ(s.labels[0].value, "2");
    EXPECT_EQ(s.value, 4);
  }
  EXPECT_EQ(seen, 1u);
  flusher.Stop();
}

TEST(PushFlusherTest, HistogramsSynthesizeCountSumAndQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("xmlproj_latency_ns");
  h->Record(100);
  h->Record(200);

  CaptureSink sink;
  PushFlusher flusher;
  PushFlusherOptions options;
  options.registry = &registry;
  options.sinks = {&sink};
  options.interval_ms = 3600 * 1000;
  std::string error;
  ASSERT_TRUE(flusher.Start(options, &error)) << error;
  ASSERT_TRUE(flusher.FlushNow());
  flusher.Stop();

  double v = 0;
  ASSERT_TRUE(sink.Find("xmlproj_latency_ns_count", &v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(sink.Find("xmlproj_latency_ns_sum", &v));
  EXPECT_EQ(v, 300);
  EXPECT_TRUE(sink.Find("xmlproj_latency_ns_p50", &v));
  EXPECT_TRUE(sink.Find("xmlproj_latency_ns_p99", &v));
}

TEST(PushFlusherTest, StartValidatesOptions) {
  PushFlusher flusher;
  std::string error;
  PushFlusherOptions options;  // no registry, no sinks
  EXPECT_FALSE(flusher.Start(options, &error));
  EXPECT_FALSE(error.empty());

  MetricsRegistry registry;
  options.registry = &registry;
  EXPECT_FALSE(flusher.Start(options, &error));  // still no sinks

  CaptureSink sink;
  options.sinks = {&sink};
  options.interval_ms = 0;
  EXPECT_FALSE(flusher.Start(options, &error));  // zero interval
}

TEST(PushFlusherTest, StopGuaranteesAFinalFlush) {
  MetricsRegistry registry;
  registry.GetCounter("xmlproj_final_total")->Increment(9);

  CaptureSink sink;
  PushFlusher flusher;
  PushFlusherOptions options;
  options.registry = &registry;
  options.sinks = {&sink};
  options.interval_ms = 3600 * 1000;  // the loop alone would never flush
  std::string error;
  ASSERT_TRUE(flusher.Start(options, &error)) << error;
  EXPECT_TRUE(flusher.running());
  flusher.Stop();
  EXPECT_FALSE(flusher.running());

  double v = 0;
  ASSERT_TRUE(sink.Find("xmlproj_final_total", &v));
  EXPECT_EQ(v, 9);
  EXPECT_GE(flusher.flushes(), 1u);

  flusher.Stop();  // idempotent
}

// A flusher configured with only a trace/trace_sink pair (the xmlprojd
// --trace-export shape) starts without a registry and drains new
// trace-stamped spans incrementally, including the guaranteed final
// flush on Stop.
TEST(PushFlusherTest, TraceOnlyFlusherExportsOtlpIncrementally) {
  char tmpl[] = "/tmp/xmlproj_trace_export_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  std::string dir = tmpl;
  std::string path = dir + "/trace.jsonl";

  TraceCollector trace;
  SpanContext context{"4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7",
                      "", "w-1"};
  trace.AddSpanEvent("POST /prune", "request", MonotonicNowNs(), 1000,
                     context);

  JsonlFileSink sink;
  std::string error;
  ASSERT_TRUE(sink.Open(path, &error)) << error;
  PushFlusher flusher;
  PushFlusherOptions options;  // no registry, no sinks: trace-only
  options.trace = &trace;
  options.trace_sink = &sink;
  options.interval_ms = 3600 * 1000;
  ASSERT_TRUE(flusher.Start(options, &error)) << error;
  ASSERT_TRUE(flusher.FlushNow());
  // Nothing new: the cursor advanced past the first span.
  ASSERT_TRUE(flusher.FlushNow());

  // A second span lands only in the final flush on Stop.
  SpanContext child{"4bf92f3577b34da6a3ce929d0e0e4736", "1111111111111111",
                    "00f067aa0ba902b7", "w-1"};
  trace.AddSpanEvent("parse", "stage", MonotonicNowNs(), 500, child);
  flusher.Stop();

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  // The 64-bit nano timestamps ride as quoted digit strings; a
  // truncated fragment (missing closing quote) breaks every JSONL
  // consumer, so check the shape, not just the key.
  for (const std::string& l : lines) {
    for (const char* key :
         {"\"startTimeUnixNano\":\"", "\"endTimeUnixNano\":\""}) {
      size_t at = l.find(key);
      ASSERT_NE(at, std::string::npos) << l;
      size_t digits = at + std::strlen(key);
      size_t end = l.find('"', digits);
      ASSERT_NE(end, std::string::npos);
      EXPECT_GT(end, digits) << l;
      for (size_t i = digits; i < end; ++i) {
        EXPECT_TRUE(l[i] >= '0' && l[i] <= '9') << l.substr(at, 48);
      }
    }
  }
  EXPECT_NE(lines[0].find("\"resourceSpans\""), std::string::npos);
  EXPECT_NE(lines[0].find(
                "\"traceId\":\"4bf92f3577b34da6a3ce929d0e0e4736\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"POST /prune\""), std::string::npos);
  EXPECT_EQ(lines[0].find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(lines[1].find(
                "\"parentSpanId\":\"00f067aa0ba902b7\""),
            std::string::npos);

  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

TEST(PushFlusherTest, TracePairMustBeComplete) {
  PushFlusher flusher;
  std::string error;
  PushFlusherOptions options;
  TraceCollector trace;
  options.trace = &trace;  // trace without a trace_sink: not a valid pair
  EXPECT_FALSE(flusher.Start(options, &error));
  EXPECT_FALSE(error.empty());
}

TEST(PushFlusherTest, SinkErrorsAreCountedNotFatal) {
  MetricsRegistry registry;
  registry.GetCounter("xmlproj_err_total")->Increment(1);

  CaptureSink bad;
  bad.ok = false;
  PushFlusher flusher;
  PushFlusherOptions options;
  options.registry = &registry;
  options.sinks = {&bad};
  options.interval_ms = 3600 * 1000;
  std::string error;
  ASSERT_TRUE(flusher.Start(options, &error)) << error;
  EXPECT_FALSE(flusher.FlushNow());
  flusher.Stop();
  EXPECT_GE(flusher.sink_errors(), 1u);
  EXPECT_FALSE(bad.batches.empty());  // the batch was still delivered
}

}  // namespace
}  // namespace xmlproj
