// Tests for the persistent run journal (obs/journal.h): record
// serialization round-trips, append/load against a real directory,
// crash tolerance (corrupt and truncated lines are skipped, never
// fatal), missing-file semantics, and SuggestBudgets' p99 × headroom
// auto-tuning with corpus filtering.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/journal.h"

namespace xmlproj {
namespace {

// A fresh scratch directory per test.
std::string ScratchDir() {
  char templ[] = "/tmp/xmlproj_journal_test_XXXXXX";
  const char* dir = mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

RunRecord SampleRecord() {
  RunRecord r;
  r.run_id = "run-0123456789a-beef";
  r.corpus = "xmark-1pct";
  r.start_unix_ms = 1700000000000ull;
  r.end_unix_ms = 1700000000500ull;
  r.wall_seconds = 0.5;
  r.tasks = 64;
  r.failed = 2;
  r.degraded = 1;
  r.retries = 3;
  r.input_bytes = 1 << 20;
  r.output_bytes = 1 << 19;
  r.peak_memory_bytes = 123456;
  r.budget_trips = 1;
  r.resume_skipped = 40;
  r.resume_rerun = 24;
  r.quarantine = {{"budget", 1}, {"parse", 1}};
  return r;
}

TEST(RunRecordTest, FormatParseRoundTrip) {
  RunRecord in = SampleRecord();
  RunRecord out;
  ASSERT_TRUE(RunJournal::ParseRecord(RunJournal::FormatRecord(in), &out));
  EXPECT_EQ(out.run_id, in.run_id);
  EXPECT_EQ(out.corpus, in.corpus);
  EXPECT_EQ(out.start_unix_ms, in.start_unix_ms);
  EXPECT_EQ(out.end_unix_ms, in.end_unix_ms);
  EXPECT_DOUBLE_EQ(out.wall_seconds, in.wall_seconds);
  EXPECT_EQ(out.tasks, in.tasks);
  EXPECT_EQ(out.failed, in.failed);
  EXPECT_EQ(out.degraded, in.degraded);
  EXPECT_EQ(out.retries, in.retries);
  EXPECT_EQ(out.input_bytes, in.input_bytes);
  EXPECT_EQ(out.output_bytes, in.output_bytes);
  EXPECT_EQ(out.peak_memory_bytes, in.peak_memory_bytes);
  EXPECT_EQ(out.budget_trips, in.budget_trips);
  EXPECT_EQ(out.resume_skipped, in.resume_skipped);
  EXPECT_EQ(out.resume_rerun, in.resume_rerun);
  ASSERT_EQ(out.quarantine.size(), 2u);
  EXPECT_EQ(out.quarantine[0].first, "budget");
  EXPECT_EQ(out.quarantine[0].second, 1u);
  EXPECT_EQ(out.quarantine[1].first, "parse");
}

TEST(RunRecordTest, CorpusWithJsonSpecialsRoundTrips) {
  RunRecord in = SampleRecord();
  in.corpus = "with \"quotes\" and \\slashes\\ and\nnewline";
  RunRecord out;
  ASSERT_TRUE(RunJournal::ParseRecord(RunJournal::FormatRecord(in), &out));
  EXPECT_EQ(out.corpus, in.corpus);
}

TEST(RunRecordTest, ParseRejectsGarbage) {
  RunRecord out;
  EXPECT_FALSE(RunJournal::ParseRecord("", &out));
  EXPECT_FALSE(RunJournal::ParseRecord("not json at all", &out));
  EXPECT_FALSE(RunJournal::ParseRecord("{\"tasks\":5}", &out));  // no run_id
  EXPECT_FALSE(RunJournal::ParseRecord("{\"run_id\":\"x\",\"tasks\":", &out));
}

TEST(RunRecordTest, ParseToleratesUnknownScalarKeys) {
  // Forward compatibility: a newer writer may add scalar fields.
  RunRecord out;
  ASSERT_TRUE(RunJournal::ParseRecord(
      "{\"run_id\":\"r1\",\"tasks\":4,\"future_field\":7,"
      "\"future_name\":\"x\"}",
      &out));
  EXPECT_EQ(out.run_id, "r1");
  EXPECT_EQ(out.tasks, 4u);
}

TEST(RunJournalTest, AppendThenLoadRoundTrips) {
  std::string dir = ScratchDir();
  ASSERT_FALSE(dir.empty());
  std::string error;
  {
    RunJournal journal;
    ASSERT_TRUE(journal.Open(dir, &error)) << error;
    RunRecord first = SampleRecord();
    RunRecord second = SampleRecord();
    second.run_id = "run-0123456789b-cafe";
    second.peak_memory_bytes = 999;
    ASSERT_TRUE(journal.Append(first, &error)) << error;
    ASSERT_TRUE(journal.Append(second, &error)) << error;
  }
  std::vector<RunRecord> records;
  size_t skipped = 1234;
  ASSERT_TRUE(RunJournal::Load(dir, &records, &skipped, &error)) << error;
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].run_id, "run-0123456789a-beef");
  EXPECT_EQ(records[1].run_id, "run-0123456789b-cafe");
  EXPECT_EQ(records[1].peak_memory_bytes, 999u);
}

TEST(RunJournalTest, FsyncModeAppendsAndLoadsIdentically) {
  std::string dir = ScratchDir();
  ASSERT_FALSE(dir.empty());
  std::string error;
  {
    RunJournal journal;
    journal.set_fsync(true);  // checkpoint-bearing runs harden appends
    ASSERT_TRUE(journal.Open(dir, &error)) << error;
    ASSERT_TRUE(journal.Append(SampleRecord(), &error)) << error;
  }
  std::vector<RunRecord> records;
  ASSERT_TRUE(RunJournal::Load(dir, &records, nullptr, &error)) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].resume_skipped, 40u);
  EXPECT_EQ(records[0].resume_rerun, 24u);
}

TEST(RunJournalTest, OpenCreatesTheDirectory) {
  std::string dir = ScratchDir() + "/nested";
  RunJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Open(dir, &error)) << error;
  EXPECT_EQ(journal.path(), RunJournal::PathFor(dir));
}

TEST(RunJournalTest, MissingFileLoadsZeroRecords) {
  std::string dir = ScratchDir();
  std::vector<RunRecord> records;
  size_t skipped = 99;
  std::string error;
  ASSERT_TRUE(RunJournal::Load(dir, &records, &skipped, &error)) << error;
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(skipped, 0u);
}

TEST(RunJournalTest, CorruptLinesAreSkippedNotFatal) {
  std::string dir = ScratchDir();
  std::string path = RunJournal::PathFor(dir);
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::string good = RunJournal::FormatRecord(SampleRecord());
  std::fprintf(f, "%s\n", good.c_str());
  std::fprintf(f, "garbage that is not json\n");
  std::fprintf(f, "{\"run_id\":\"trunc\",\"task");  // crash mid-append
  std::fclose(f);

  std::vector<RunRecord> records;
  size_t skipped = 0;
  std::string error;
  ASSERT_TRUE(RunJournal::Load(dir, &records, &skipped, &error)) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].run_id, "run-0123456789a-beef");
  EXPECT_EQ(skipped, 2u);
}

TEST(RunJournalTest, UnterminatedButCompleteFinalLineStillLoads) {
  // A crash between fwrite and the newline flush can leave a complete
  // JSON document with no trailing '\n'; that record is recoverable.
  std::string dir = ScratchDir();
  std::FILE* f = std::fopen(RunJournal::PathFor(dir).c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::string good = RunJournal::FormatRecord(SampleRecord());
  std::fwrite(good.data(), 1, good.size(), f);  // no newline
  std::fclose(f);

  std::vector<RunRecord> records;
  size_t skipped = 0;
  std::string error;
  ASSERT_TRUE(RunJournal::Load(dir, &records, &skipped, &error)) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(skipped, 0u);
}

TEST(GenerateRunIdTest, NonEmptyAndPrefixed) {
  std::string id = GenerateRunId();
  EXPECT_EQ(id.compare(0, 4, "run-"), 0) << id;
  EXPECT_GT(id.size(), 8u);
}

RunRecord PeakRecord(uint64_t peak, const std::string& corpus = "c") {
  RunRecord r;
  r.run_id = "run-x";
  r.corpus = corpus;
  r.peak_memory_bytes = peak;
  return r;
}

TEST(SuggestBudgetsTest, EmptyHistoryMeansNoSuggestion) {
  BudgetSuggestion s = SuggestBudgets({});
  EXPECT_EQ(s.runs, 0u);
  EXPECT_EQ(s.suggested_max_bytes, 0u);
}

TEST(SuggestBudgetsTest, ZeroPeaksAreNotSamples) {
  // Unmetered runs (peak 0) carry no budget information.
  std::vector<RunRecord> records = {PeakRecord(0), PeakRecord(0)};
  BudgetSuggestion s = SuggestBudgets(records);
  EXPECT_EQ(s.runs, 0u);
  EXPECT_EQ(s.suggested_max_bytes, 0u);
}

TEST(SuggestBudgetsTest, SingleRunP99IsThatPeak) {
  std::vector<RunRecord> records = {PeakRecord(1000)};
  BudgetSuggestion s = SuggestBudgets(records, {}, 1.5);
  EXPECT_EQ(s.runs, 1u);
  EXPECT_EQ(s.p99_peak_bytes, 1000u);
  EXPECT_EQ(s.suggested_max_bytes, 1500u);
}

TEST(SuggestBudgetsTest, P99IgnoresTheTopOutlierAtScale) {
  // 200 samples: 199 at 1000, one at 10^9. Rank ceil(0.99*200)=198 → the
  // outlier (rank 200) is above the p99.
  std::vector<RunRecord> records;
  for (int i = 0; i < 199; ++i) records.push_back(PeakRecord(1000));
  records.push_back(PeakRecord(1000000000));
  BudgetSuggestion s = SuggestBudgets(records, {}, 1.0);
  EXPECT_EQ(s.runs, 200u);
  EXPECT_EQ(s.p99_peak_bytes, 1000u);
  EXPECT_EQ(s.suggested_max_bytes, 1000u);
}

TEST(SuggestBudgetsTest, CorpusFilterKeepsBudgetsCorpusShaped) {
  std::vector<RunRecord> records = {PeakRecord(100, "tiny"),
                                    PeakRecord(1000000, "huge")};
  BudgetSuggestion tiny = SuggestBudgets(records, "tiny", 1.0);
  EXPECT_EQ(tiny.runs, 1u);
  EXPECT_EQ(tiny.suggested_max_bytes, 100u);
  BudgetSuggestion huge = SuggestBudgets(records, "huge", 1.0);
  EXPECT_EQ(huge.suggested_max_bytes, 1000000u);
  BudgetSuggestion none = SuggestBudgets(records, "unseen", 1.0);
  EXPECT_EQ(none.runs, 0u);
}

TEST(SuggestBudgetsTest, HeadroomClampsToAtLeastOne) {
  // headroom < 1 would suggest a cap below the observed peak — clamped.
  std::vector<RunRecord> records = {PeakRecord(1000)};
  BudgetSuggestion s = SuggestBudgets(records, {}, 0.25);
  EXPECT_GE(s.suggested_max_bytes, 1000u);
}

}  // namespace
}  // namespace xmlproj
