// Tests for the per-workload SLO tracker (obs/slo.h): burn-rate math
// for both objectives, the fast/slow window split under an injected
// clock, ring-slot staleness across hours, the bounded-workload fold to
// "other", the burn gauges, and the /statusz JSON block.

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/slo.h"

namespace xmlproj {
namespace {

// SloOptions takes a plain function pointer, so the injected clock rides
// in a file-scope variable.
uint64_t g_now_ms = 0;
uint64_t TestNowMs() { return g_now_ms; }

constexpr uint64_t kMs = 1;
constexpr uint64_t kMinuteMs = 60000;

SloOptions BaseOptions() {
  SloOptions options;
  options.latency_threshold_ms = 100;
  options.availability_objective = 0.9;  // budget 0.1
  options.latency_objective = 0.9;       // budget 0.1
  options.now_ms = TestNowMs;
  return options;
}

TEST(SloTest, BurnRatesFollowTheBudget) {
  g_now_ms = 10 * kMinuteMs;
  SloTracker tracker(BaseOptions());
  // 10 requests, 1 error, 2 slow: error fraction 0.1 against a 0.1
  // budget burns at exactly 1.0; slow fraction 0.2 burns at 2.0.
  for (int i = 0; i < 7; ++i) {
    tracker.Record("w1", 50 * kMs * 1000000, /*error=*/false);
  }
  tracker.Record("w1", 500 * kMs * 1000000, false);
  tracker.Record("w1", 500 * kMs * 1000000, false);
  tracker.Record("w1", 50 * kMs * 1000000, /*error=*/true);

  SloTracker::WindowBurn burn = tracker.Burn("w1", 5);
  EXPECT_EQ(burn.requests, 10u);
  EXPECT_EQ(burn.errors, 1u);
  EXPECT_EQ(burn.slow, 2u);
  EXPECT_NEAR(burn.availability_burn, 1.0, 1e-9);
  EXPECT_NEAR(burn.latency_burn, 2.0, 1e-9);
}

TEST(SloTest, ExactThresholdIsNotSlow) {
  g_now_ms = kMinuteMs;
  SloTracker tracker(BaseOptions());
  tracker.Record("w", 100ull * 1000000, false);  // exactly the threshold
  tracker.Record("w", 100ull * 1000000 + 1000000, false);  // one ms past
  SloTracker::WindowBurn burn = tracker.Burn("w", 5);
  EXPECT_EQ(burn.slow, 1u);
}

TEST(SloTest, FastWindowForgetsWhatTheSlowWindowKeeps) {
  g_now_ms = 10 * kMinuteMs;
  SloTracker tracker(BaseOptions());
  tracker.Record("w", 1, /*error=*/true);

  // Eight minutes later the failure is outside the 5m window but well
  // inside the 1h window.
  g_now_ms += 8 * kMinuteMs;
  tracker.Record("w", 1, false);

  SloTracker::WindowBurn fast = tracker.Burn("w", 5);
  EXPECT_EQ(fast.requests, 1u);
  EXPECT_EQ(fast.errors, 0u);
  SloTracker::WindowBurn slow = tracker.Burn("w", 60);
  EXPECT_EQ(slow.requests, 2u);
  EXPECT_EQ(slow.errors, 1u);
}

TEST(SloTest, StaleRingSlotsFromAPriorHourAreIgnored) {
  g_now_ms = 10 * kMinuteMs;
  SloTracker tracker(BaseOptions());
  tracker.Record("w", 1, true);

  // 61 minutes later the old bucket's slot would alias in the ring; the
  // stored minute stamp must disqualify it.
  g_now_ms += 61 * kMinuteMs;
  tracker.Record("w", 1, false);
  SloTracker::WindowBurn slow = tracker.Burn("w", 60);
  EXPECT_EQ(slow.requests, 1u);
  EXPECT_EQ(slow.errors, 0u);
}

TEST(SloTest, WorkloadsPastTheCapFoldToOther) {
  g_now_ms = kMinuteMs;
  SloOptions options = BaseOptions();
  options.max_workloads = 2;
  SloTracker tracker(options);
  tracker.Record("w1", 1, false);
  tracker.Record("w2", 1, false);
  tracker.Record("w3", 1, true);
  tracker.Record("w4", 1, true);

  EXPECT_EQ(tracker.Burn("w1", 5).requests, 1u);
  EXPECT_EQ(tracker.Burn("w3", 5).requests, 0u);
  EXPECT_EQ(tracker.Burn("other", 5).requests, 2u);
  EXPECT_EQ(tracker.Burn("other", 5).errors, 2u);
}

TEST(SloTest, PublishesBurnGaugesInMilliUnits) {
  g_now_ms = kMinuteMs;
  MetricsRegistry metrics;
  SloOptions options = BaseOptions();
  options.metrics = &metrics;
  SloTracker tracker(options);
  for (int i = 0; i < 9; ++i) tracker.Record("w1", 1, false);
  tracker.Record("w1", 1, /*error=*/true);  // 0.1/0.1 → burn 1.0 → 1000

  Gauge* gauge = metrics.GetGauge(
      "xmlproj_slo_burn_milli",
      {{"slo", "availability"}, {"window", "5m"}, {"workload", "w1"}});
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->Value(), 1000);
  Gauge* latency = metrics.GetGauge(
      "xmlproj_slo_burn_milli",
      {{"slo", "latency"}, {"window", "1h"}, {"workload", "w1"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Value(), 0);
}

TEST(SloTest, JsonBlockListsWorkloadsAndObjectives) {
  g_now_ms = kMinuteMs;
  SloTracker tracker(BaseOptions());
  tracker.Record("w1", 1, false);
  tracker.Record("w1", 1, true);

  std::string json;
  tracker.AppendSloJson(&json);
  EXPECT_NE(json.find("\"latency_threshold_ms\":100"), std::string::npos);
  EXPECT_NE(json.find("\"availability_objective\":0.900"), std::string::npos);
  EXPECT_NE(json.find("\"workload\":\"w1\""), std::string::npos);
  EXPECT_NE(json.find("\"5m\":{\"requests\":2,\"errors\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"1h\":"), std::string::npos);
}

TEST(SloTest, EmptyTrackerRendersEmptyWorkloadList) {
  SloTracker tracker;
  std::string json;
  tracker.AppendSloJson(&json);
  EXPECT_NE(json.find("\"workloads\":[]"), std::string::npos);
  EXPECT_EQ(tracker.Burn("nope", 5).requests, 0u);
}

}  // namespace
}  // namespace xmlproj
