#include "xmark/workbench.h"

#include <gtest/gtest.h>

#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xmark/xmark_dtd.h"

namespace xmlproj {
namespace {

TEST(CountsForScale, MatchesXmlgenBaselines) {
  XMarkCounts full = CountsForScale(1.0);
  EXPECT_EQ(1000, full.categories);
  EXPECT_EQ(21750, full.items);
  EXPECT_EQ(25500, full.persons);
  EXPECT_EQ(12000, full.open_auctions);
  EXPECT_EQ(9750, full.closed_auctions);

  XMarkCounts tenth = CountsForScale(0.1);
  EXPECT_EQ(2175, tenth.items);

  // Tiny scales still produce at least one of everything.
  XMarkCounts tiny = CountsForScale(0.00001);
  EXPECT_GE(tiny.categories, 1);
  EXPECT_GE(tiny.items, 1);
  EXPECT_GE(tiny.persons, 1);
  EXPECT_GE(tiny.open_auctions, 1);
  EXPECT_GE(tiny.closed_auctions, 1);
}

TEST(Workbench, RunsXPathQueries) {
  XMarkOptions options;
  options.scale = 0.001;
  Document doc = std::move(GenerateXMark(options)).value();
  BenchmarkQuery query{"t", QueryLanguage::kXPath,
                       "/site/people/person/name", ""};
  auto run = RunBenchmarkQuery(query, doc);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->result_items, 0u);
  EXPECT_NE(std::string::npos, run->serialized.find("<name>"));
  EXPECT_GT(run->memory_bytes, doc.MemoryBytes());  // doc + eval overhead
  EXPECT_GE(run->seconds, 0.0);
}

TEST(Workbench, RunsXQueryQueries) {
  XMarkOptions options;
  options.scale = 0.001;
  Document doc = std::move(GenerateXMark(options)).value();
  BenchmarkQuery query{
      "t", QueryLanguage::kXQuery,
      "for $p in /site/people/person return <n>{$p/name/text()}</n>", ""};
  auto run = RunBenchmarkQuery(query, doc);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->result_items, 0u);
  EXPECT_NE(std::string::npos, run->serialized.find("<n>"));
}

TEST(Workbench, SurfacesQueryErrors) {
  XMarkOptions options;
  options.scale = 0.0005;
  Document doc = std::move(GenerateXMark(options)).value();
  BenchmarkQuery bad{"t", QueryLanguage::kXPath, "///", ""};
  EXPECT_FALSE(RunBenchmarkQuery(bad, doc).ok());
  BenchmarkQuery bad2{"t", QueryLanguage::kXQuery, "for $x in", ""};
  EXPECT_FALSE(RunBenchmarkQuery(bad2, doc).ok());
}

TEST(Workbench, AnalyzesBothLanguages) {
  Dtd dtd = std::move(LoadXMarkDtd()).value();
  BenchmarkQuery xp{"t", QueryLanguage::kXPath, "//keyword", ""};
  BenchmarkQuery xq{"t", QueryLanguage::kXQuery,
                    "for $k in //keyword return $k", ""};
  auto p1 = AnalyzeBenchmarkQuery(xp, dtd);
  auto p2 = AnalyzeBenchmarkQuery(xq, dtd);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(p1->Contains(dtd.NameOfTag("keyword")));
  EXPECT_TRUE(p2->Contains(dtd.NameOfTag("keyword")));
}

TEST(BenchmarkQueries, EveryQueryParsesAndAnalyzes) {
  Dtd dtd = std::move(LoadXMarkDtd()).value();
  for (const BenchmarkQuery& query : AllBenchmarkQueries()) {
    auto projector = AnalyzeBenchmarkQuery(query, dtd);
    EXPECT_TRUE(projector.ok())
        << query.id << ": " << projector.status().ToString();
    if (projector.ok()) {
      EXPECT_TRUE(projector->Contains(dtd.root())) << query.id;
    }
  }
}

TEST(BenchmarkQueries, IdsAreUniqueAndOrdered) {
  std::vector<BenchmarkQuery> all = AllBenchmarkQueries();
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].id, all[i].id);
  }
}

TEST(Workbench, NowSecondsIsMonotonic) {
  double a = NowSeconds();
  double b = NowSeconds();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace xmlproj
