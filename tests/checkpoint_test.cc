// Tests for crash-safe pruning runs (projection/checkpoint.h): the
// checkpoint wire format, binding sensitivity, atomic output commits,
// and — the load-bearing property — resume correctness: a run killed
// after any prefix of tasks and resumed must produce the byte-identical
// corpus and the same summary fold as an uninterrupted run. Also
// covered: quarantine carry-forward vs --resume-retry-quarantined,
// tampered-output re-verification, graceful drain (drained tasks have
// no terminal outcome and re-run on resume), the hung-task watchdog,
// and the checkpoint.append / pipeline.commit failpoints.

#include "projection/checkpoint.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "projection/pipeline.h"
#include "projection/projection.h"
#include "xmark/corpus.h"
#include "xmark/xmark_dtd.h"

namespace xmlproj {
namespace {

std::string ScratchDir() {
  char templ[] = "/tmp/xmlproj_checkpoint_test_XXXXXX";
  const char* dir = mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

// Truncates checkpoint.jsonl to the header plus the first `keep` task
// records — the on-disk state after a kill -9 once `keep` tasks had
// their records fsync'd.
void TruncateCheckpoint(const std::string& dir, size_t keep) {
  std::string path = RunCheckpoint::PathFor(dir);
  std::string text = ReadFileOrDie(path);
  std::string kept;
  size_t lines = 0, start = 0;
  while (start < text.size() && lines < keep + 1) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) break;
    kept.append(text, start, end - start + 1);
    start = end + 1;
    ++lines;
  }
  WriteFileOrDie(path, kept);
}

const Dtd& XmarkDtd() {
  static const Dtd* dtd = new Dtd(std::move(LoadXMarkDtd()).value());
  return *dtd;
}

const NameSet& XmarkProjector() {
  static const NameSet* p = new NameSet(
      std::move(WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload()))
          .value());
  return *p;
}

std::vector<std::string> SmallCorpus(int documents) {
  XMarkCorpusOptions options;
  options.documents = documents;
  options.scale = 0.0005;
  return GenerateXMarkCorpus(options);
}

CheckpointHeader SampleHeader(std::span<const std::string> corpus,
                              const PipelineOptions& options) {
  CheckpointHeader header;
  header.run_id = "run-0123456789a-beef";
  header.started_unix_ms = 1700000000000ull;
  header.binding = ComputeCorpusBinding(
      corpus, std::span<const NameSet>(&XmarkProjector(), 1), options,
      "xmark-dashboard-merged");
  return header;
}

// --- Hashing and atomic writes ------------------------------------------

TEST(Fnv1aTest, KnownVectors) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  // Chaining continues from the seed: hashing "ab" in one call equals
  // hashing "b" seeded with the hash of "a".
  EXPECT_EQ(Fnv1a64("ab"), Fnv1a64("b", Fnv1a64("a")));
}

TEST(ContentHashTest, DiscriminatesLengthTailAndOrder) {
  // The word-at-a-time variant must stay deterministic and sensitive to
  // every byte, including the sub-word tail and trailing zeros.
  EXPECT_EQ(ContentHash64("projection"), ContentHash64("projection"));
  EXPECT_NE(ContentHash64(""), ContentHash64(std::string(1, '\0')));
  EXPECT_NE(ContentHash64(std::string(8, '\0')),
            ContentHash64(std::string(9, '\0')));
  EXPECT_NE(ContentHash64("abcdefgh-tail"), ContentHash64("abcdefgh-tali"));
  EXPECT_NE(ContentHash64("abcdefghijklmnop"),
            ContentHash64("ijklmnopabcdefgh"));
}

TEST(AtomicWriteTest, WritesAndReplacesWithoutTempResidue) {
  std::string dir = ScratchDir();
  std::string path = dir + "/report.json";
  std::string error;
  ASSERT_TRUE(AtomicWriteTextFile(path, "first", false, &error)) << error;
  EXPECT_EQ(ReadFileOrDie(path), "first");
  ASSERT_TRUE(AtomicWriteTextFile(path, "second", true, &error)) << error;
  EXPECT_EQ(ReadFileOrDie(path), "second");
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file left behind";
}

TEST(AtomicWriteTest, FailsWithErrorOnMissingDirectory) {
  std::string error;
  EXPECT_FALSE(AtomicWriteTextFile("/nonexistent-dir-xyz/file", "x", false,
                                   &error));
  EXPECT_FALSE(error.empty());
}

// --- Wire format --------------------------------------------------------

TEST(CheckpointFormatTest, HeaderRoundTripsWithEscaping) {
  std::vector<std::string> corpus = SmallCorpus(2);
  PipelineOptions options;
  CheckpointHeader in = SampleHeader(corpus, options);
  in.binding.workload = "with \"quotes\"\nand newline";
  CheckpointHeader out;
  ASSERT_TRUE(RunCheckpoint::ParseHeader(RunCheckpoint::FormatHeader(in),
                                         &out));
  EXPECT_EQ(out.run_id, in.run_id);
  EXPECT_EQ(out.started_unix_ms, in.started_unix_ms);
  std::string mismatch;
  EXPECT_TRUE(out.binding.Matches(in.binding, &mismatch)) << mismatch;
}

TEST(CheckpointFormatTest, CompletedRecordRoundTrips) {
  CheckpointTaskRecord in;
  in.task = 7;
  in.completed = true;
  in.degraded = true;
  in.output_path = "out/task-7.xml";
  in.output_bytes = 12345;
  // High bit set: a hash that a double round-trip would corrupt.
  in.output_hash = 0xdeadbeefcafef00dull;
  in.input_bytes = 54321;
  in.input_nodes = 100;
  in.kept_nodes = 42;
  in.input_text_bytes = 900;
  in.kept_text_bytes = 450;
  CheckpointTaskRecord out;
  ASSERT_TRUE(RunCheckpoint::ParseRecord(RunCheckpoint::FormatRecord(in),
                                         &out));
  EXPECT_EQ(out.task, in.task);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.output_path, in.output_path);
  EXPECT_EQ(out.output_bytes, in.output_bytes);
  EXPECT_EQ(out.output_hash, in.output_hash);
  EXPECT_EQ(out.input_bytes, in.input_bytes);
  EXPECT_EQ(out.input_nodes, in.input_nodes);
  EXPECT_EQ(out.kept_nodes, in.kept_nodes);
  EXPECT_EQ(out.input_text_bytes, in.input_text_bytes);
  EXPECT_EQ(out.kept_text_bytes, in.kept_text_bytes);
}

TEST(CheckpointFormatTest, QuarantinedRecordRoundTrips) {
  CheckpointTaskRecord in;
  in.task = 3;
  in.completed = false;
  in.stage = "watchdog";
  in.code = "DEADLINE_EXCEEDED";
  in.attempts = 2;
  CheckpointTaskRecord out;
  ASSERT_TRUE(RunCheckpoint::ParseRecord(RunCheckpoint::FormatRecord(in),
                                         &out));
  EXPECT_EQ(out.task, in.task);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.stage, in.stage);
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.attempts, in.attempts);
}

TEST(CheckpointFormatTest, ParseRejectsGarbage) {
  CheckpointTaskRecord record;
  EXPECT_FALSE(RunCheckpoint::ParseRecord("", &record));
  EXPECT_FALSE(RunCheckpoint::ParseRecord("not json", &record));
  EXPECT_FALSE(RunCheckpoint::ParseRecord("{\"type\":\"task\"", &record));
  CheckpointHeader header;
  EXPECT_FALSE(RunCheckpoint::ParseHeader("{\"type\":\"task\",\"task\":1}",
                                          &header));
}

TEST(StatusCodeFromNameTest, InvertsStatusCodeName) {
  for (StatusCode code :
       {StatusCode::kParseError, StatusCode::kInvalid, StatusCode::kCancelled,
        StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_EQ(StatusCodeFromName(StatusCodeName(code)), code);
  }
  EXPECT_EQ(StatusCodeFromName("NO_SUCH_CODE"), StatusCode::kInternal);
}

// --- Binding sensitivity ------------------------------------------------

TEST(CheckpointBindingTest, DetectsEveryKindOfDrift) {
  std::vector<std::string> corpus = SmallCorpus(2);
  PipelineOptions options;
  std::span<const NameSet> projectors(&XmarkProjector(), 1);
  CheckpointBinding base =
      ComputeCorpusBinding(corpus, projectors, options, "w");
  std::string mismatch;
  EXPECT_TRUE(base.Matches(base, &mismatch)) << mismatch;

  std::vector<std::string> other_corpus = corpus;
  other_corpus[1][other_corpus[1].size() / 2] ^= 1;
  EXPECT_FALSE(base.Matches(
      ComputeCorpusBinding(other_corpus, projectors, options, "w"),
      &mismatch));
  EXPECT_NE(mismatch.find("corpus"), std::string::npos) << mismatch;

  PipelineOptions budgeted = options;
  budgeted.budget.max_bytes = 1 << 20;
  EXPECT_FALSE(base.Matches(
      ComputeCorpusBinding(corpus, projectors, budgeted, "w"), &mismatch));
  EXPECT_NE(mismatch.find("options"), std::string::npos) << mismatch;

  EXPECT_FALSE(base.Matches(
      ComputeCorpusBinding(corpus, projectors, options, "other"), &mismatch));
  EXPECT_NE(mismatch.find("workload"), std::string::npos) << mismatch;

  EXPECT_FALSE(base.Matches(
      ComputeCorpusBinding(SmallCorpus(3), projectors, options, "w"),
      &mismatch));
  EXPECT_NE(mismatch.find("task count"), std::string::npos) << mismatch;

  // Thread count and telemetry must NOT invalidate a checkpoint.
  PipelineOptions threaded = options;
  threaded.num_threads = 7;
  threaded.meter_memory = true;
  EXPECT_TRUE(base.Matches(
      ComputeCorpusBinding(corpus, projectors, threaded, "w"), &mismatch))
      << mismatch;
}

// --- Checkpointed runs and resume --------------------------------------

// Reference run (no checkpoint) against which every resumed run is
// diffed.
PipelineRun ReferenceRun(const std::vector<std::string>& corpus,
                         const PipelineOptions& options) {
  auto result = PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(CheckpointRunTest, CheckpointedRunMatchesPlainRunAndCommitsOutputs) {
  std::vector<std::string> corpus = SmallCorpus(4);
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 2;
  PipelineRun reference = ReferenceRun(corpus, options);

  std::string dir = ScratchDir();
  RunCheckpoint checkpoint;
  ASSERT_TRUE(
      checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  PipelineOptions durable = options;
  durable.checkpoint = &checkpoint;
  PipelineRun run = ReferenceRun(corpus, durable);

  ASSERT_EQ(run.results.size(), reference.results.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(run.results[i].output, reference.results[i].output);
    // The committed file is the same bytes the pipeline returned.
    EXPECT_EQ(ReadFileOrDie(RunCheckpoint::TaskOutputPath(dir, i)),
              run.results[i].output)
        << "task " << i;
  }
  EXPECT_EQ(checkpoint.appends(), corpus.size());

  CheckpointHeader header;
  std::vector<CheckpointTaskRecord> records;
  size_t skipped = 0;
  std::string error;
  ASSERT_TRUE(
      RunCheckpoint::LoadCheckpoint(dir, &header, &records, &skipped, &error))
      << error;
  EXPECT_EQ(records.size(), corpus.size());
  EXPECT_EQ(skipped, 0u);
}

// The kill-point matrix: crash after k fsync'd records, resume, and the
// resumed corpus + summary must be indistinguishable from a clean run.
void RunKillPointMatrix(ErrorPolicy policy, bool chunked) {
  std::vector<std::string> corpus = SmallCorpus(5);
  PipelineOptions options;
  options.policy = policy;
  options.num_threads = 2;
  if (chunked) {
    options.intra_doc.threads = 2;
    options.intra_doc.chunk_bytes = 4096;
    options.intra_doc.min_doc_bytes = 1;
    options.intra_doc.min_chunks_per_thread = 1;
  }
  PipelineRun reference = ReferenceRun(corpus, options);
  std::span<const NameSet> projectors(&XmarkProjector(), 1);
  CheckpointBinding binding = ComputeCorpusBinding(
      corpus, projectors, options, "xmark-dashboard-merged");

  for (size_t kill_after : {size_t{0}, size_t{2}, size_t{5}}) {
    std::string dir = ScratchDir();
    RunCheckpoint first;
    ASSERT_TRUE(first.Create(dir, SampleHeader(corpus, options)).ok());
    {
      PipelineOptions durable = options;
      durable.checkpoint = &first;
      ReferenceRun(corpus, durable);
    }
    // Simulate the kill: only the first `kill_after` records survived.
    TruncateCheckpoint(dir, kill_after);

    ResumePlan plan = PlanResume(dir, binding, /*retry_quarantined=*/false);
    ASSERT_TRUE(plan.resumable) << plan.mismatch;
    EXPECT_EQ(plan.skipped_completed, kill_after);

    RunCheckpoint resumed;
    ASSERT_TRUE(resumed.OpenForAppend(dir).ok());
    PipelineOptions resume_options = options;
    resume_options.checkpoint = &resumed;
    resume_options.resume = &plan;
    auto result =
        PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), resume_options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Byte-identical corpus: every committed output matches the clean
    // run (skipped tasks keep their prior commit, re-run tasks recommit).
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(ReadFileOrDie(RunCheckpoint::TaskOutputPath(dir, i)),
                reference.results[i].output)
          << "task " << i << " after kill at " << kill_after;
    }
    // Exact summary fold.
    const PipelineSummary& s = result->summary;
    EXPECT_EQ(s.tasks, reference.summary.tasks);
    EXPECT_EQ(s.input_bytes, reference.summary.input_bytes);
    EXPECT_EQ(s.output_bytes, reference.summary.output_bytes);
    EXPECT_EQ(s.input_nodes, reference.summary.input_nodes);
    EXPECT_EQ(s.kept_nodes, reference.summary.kept_nodes);
    EXPECT_EQ(s.input_text_bytes, reference.summary.input_text_bytes);
    EXPECT_EQ(s.kept_text_bytes, reference.summary.kept_text_bytes);
    EXPECT_EQ(s.failed, reference.summary.failed);
    EXPECT_EQ(s.resumed_skipped, kill_after);
  }
}

TEST(CheckpointResumeTest, KillPointMatrixIsolate) {
  RunKillPointMatrix(ErrorPolicy::kIsolate, /*chunked=*/false);
}

TEST(CheckpointResumeTest, KillPointMatrixRetry) {
  RunKillPointMatrix(ErrorPolicy::kRetry, /*chunked=*/false);
}

TEST(CheckpointResumeTest, KillPointMatrixChunked) {
  RunKillPointMatrix(ErrorPolicy::kIsolate, /*chunked=*/true);
}

TEST(CheckpointResumeTest, TornFinalLineIsToleratedAndRerun) {
  std::vector<std::string> corpus = SmallCorpus(3);
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 1;
  std::string dir = ScratchDir();
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  {
    PipelineOptions durable = options;
    durable.checkpoint = &checkpoint;
    ReferenceRun(corpus, durable);
  }
  // Tear the last record mid-line (crash between fwrite and the flush
  // reaching all bytes).
  std::string path = RunCheckpoint::PathFor(dir);
  std::string text = ReadFileOrDie(path);
  WriteFileOrDie(path, text.substr(0, text.size() - 25));

  std::span<const NameSet> projectors(&XmarkProjector(), 1);
  ResumePlan plan = PlanResume(
      dir,
      ComputeCorpusBinding(corpus, projectors, options,
                           "xmark-dashboard-merged"),
      false);
  ASSERT_TRUE(plan.resumable) << plan.mismatch;
  EXPECT_EQ(plan.skipped_completed, 2u);
  EXPECT_EQ(plan.torn_lines, 1u);
  EXPECT_FALSE(plan.done[2]);
}

TEST(CheckpointResumeTest, TamperedOutputIsInvalidatedAndRerun) {
  std::vector<std::string> corpus = SmallCorpus(3);
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 1;
  PipelineRun reference = ReferenceRun(corpus, options);
  std::string dir = ScratchDir();
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  {
    PipelineOptions durable = options;
    durable.checkpoint = &checkpoint;
    ReferenceRun(corpus, durable);
  }
  // Same size, different bytes: only the content hash can catch this.
  std::string tampered = ReadFileOrDie(RunCheckpoint::TaskOutputPath(dir, 1));
  tampered[tampered.size() / 2] ^= 1;
  WriteFileOrDie(RunCheckpoint::TaskOutputPath(dir, 1), tampered);

  std::span<const NameSet> projectors(&XmarkProjector(), 1);
  ResumePlan plan = PlanResume(
      dir,
      ComputeCorpusBinding(corpus, projectors, options,
                           "xmark-dashboard-merged"),
      false);
  ASSERT_TRUE(plan.resumable) << plan.mismatch;
  EXPECT_EQ(plan.invalidated, 1u);
  EXPECT_FALSE(plan.done[1]);

  RunCheckpoint resumed;
  ASSERT_TRUE(resumed.OpenForAppend(dir).ok());
  PipelineOptions resume_options = options;
  resume_options.checkpoint = &resumed;
  resume_options.resume = &plan;
  auto result =
      PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), resume_options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ReadFileOrDie(RunCheckpoint::TaskOutputPath(dir, 1)),
            reference.results[1].output);
}

TEST(CheckpointResumeTest, QuarantineCarriesForwardUnlessRetryRequested) {
  std::vector<std::string> corpus = SmallCorpus(3);
  corpus[1] = "<site><open_auctions></site>";  // malformed: parse error
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 1;
  std::string dir = ScratchDir();
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  {
    PipelineOptions durable = options;
    durable.checkpoint = &checkpoint;
    PipelineRun run = ReferenceRun(corpus, durable);
    ASSERT_EQ(run.failures.size(), 1u);
    EXPECT_EQ(run.failures[0].task, 1u);
  }
  std::span<const NameSet> projectors(&XmarkProjector(), 1);
  CheckpointBinding binding = ComputeCorpusBinding(
      corpus, projectors, options, "xmark-dashboard-merged");

  // Default: the quarantined task stays settled and its failure is
  // carried into the resumed run's report with the recorded stage.
  ResumePlan carry = PlanResume(dir, binding, /*retry_quarantined=*/false);
  ASSERT_TRUE(carry.resumable) << carry.mismatch;
  EXPECT_EQ(carry.skipped_quarantined, 1u);
  EXPECT_TRUE(carry.done[1]);
  ASSERT_EQ(carry.prior_failures.size(), 1u);
  EXPECT_EQ(carry.prior_failures[0].stage, "parse");
  {
    RunCheckpoint resumed;
    ASSERT_TRUE(resumed.OpenForAppend(dir).ok());
    PipelineOptions resume_options = options;
    resume_options.checkpoint = &resumed;
    resume_options.resume = &carry;
    auto result =
        PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), resume_options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->failures.size(), 1u);
    EXPECT_EQ(result->failures[0].task, 1u);
    EXPECT_EQ(result->failures[0].stage, "parse");
    EXPECT_EQ(result->summary.failed, 1u);
  }

  // With the retry flag the task is re-admitted (and fails again here,
  // but as a fresh failure from this run, not a carried one).
  ResumePlan retry = PlanResume(dir, binding, /*retry_quarantined=*/true);
  ASSERT_TRUE(retry.resumable) << retry.mismatch;
  EXPECT_EQ(retry.retry_quarantined, 1u);
  EXPECT_FALSE(retry.done[1]);
  EXPECT_TRUE(retry.prior_failures.empty());
}

TEST(CheckpointResumeTest, FullyCompleteCheckpointSkipsEverything) {
  std::vector<std::string> corpus = SmallCorpus(3);
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 2;
  PipelineRun reference = ReferenceRun(corpus, options);
  std::string dir = ScratchDir();
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  {
    PipelineOptions durable = options;
    durable.checkpoint = &checkpoint;
    ReferenceRun(corpus, durable);
  }
  std::span<const NameSet> projectors(&XmarkProjector(), 1);
  ResumePlan plan = PlanResume(
      dir,
      ComputeCorpusBinding(corpus, projectors, options,
                           "xmark-dashboard-merged"),
      false);
  ASSERT_TRUE(plan.resumable) << plan.mismatch;
  EXPECT_EQ(plan.skipped_completed, corpus.size());

  MetricsRegistry registry;
  RunCheckpoint resumed;
  ASSERT_TRUE(resumed.OpenForAppend(dir).ok());
  PipelineOptions resume_options = options;
  resume_options.checkpoint = &resumed;
  resume_options.resume = &plan;
  resume_options.metrics = &registry;
  auto result =
      PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), resume_options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->summary.tasks, reference.summary.tasks);
  EXPECT_EQ(result->summary.output_bytes, reference.summary.output_bytes);
  EXPECT_EQ(result->summary.resumed_skipped, corpus.size());
  EXPECT_EQ(resumed.appends(), 0u) << "nothing ran, nothing appends";
  EXPECT_EQ(
      registry.GetCounter("xmlproj_checkpoint_tasks_skipped")->Value(),
      corpus.size());
  EXPECT_EQ(registry.GetCounter("xmlproj_checkpoint_resume_total")->Value(),
            1u);
}

TEST(CheckpointResumeTest, MismatchedBindingRefusesToResume) {
  std::vector<std::string> corpus = SmallCorpus(2);
  PipelineOptions options;
  options.num_threads = 1;
  std::string dir = ScratchDir();
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  {
    PipelineOptions durable = options;
    durable.checkpoint = &checkpoint;
    ReferenceRun(corpus, durable);
  }
  PipelineOptions changed = options;
  changed.validate = true;  // output-shaping: changes terminal outcomes
  std::span<const NameSet> projectors(&XmarkProjector(), 1);
  ResumePlan plan = PlanResume(
      dir,
      ComputeCorpusBinding(corpus, projectors, changed,
                           "xmark-dashboard-merged"),
      false);
  EXPECT_FALSE(plan.resumable);
  EXPECT_FALSE(plan.mismatch.empty());

  // The pipeline refuses a non-resumable plan outright.
  PipelineOptions resume_options = options;
  resume_options.resume = &plan;
  auto result =
      PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), resume_options);
  EXPECT_FALSE(result.ok());
}

// --- Graceful drain -----------------------------------------------------

TEST(DrainTest, StopBeforeRunDrainsEverythingWithNoTerminalOutcome) {
  std::vector<std::string> corpus = SmallCorpus(3);
  std::string dir = ScratchDir();
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 1;
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  std::atomic<bool> stop{true};
  MetricsRegistry registry;
  options.checkpoint = &checkpoint;
  options.stop = &stop;
  options.metrics = &registry;
  auto result = PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->summary.drained, corpus.size());
  EXPECT_EQ(result->summary.tasks, 0u);
  EXPECT_TRUE(result->failures.empty());
  EXPECT_EQ(checkpoint.appends(), 0u)
      << "drained tasks must not be checkpointed";
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_drained_total")->Value(),
            corpus.size());
}

TEST(DrainTest, MidRunStopFinishesInFlightAndDrainsTheRest) {
  std::vector<std::string> corpus = SmallCorpus(6);
  std::string dir = ScratchDir();
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 2;
  options.drain_ms = 5000;
  // Slow every task down so the stop lands mid-corpus.
  FaultInjector fault;
  ASSERT_TRUE(fault.ArmFromSpec("pipeline.task:delay:1:-1:60").ok());
  options.fault = &fault;
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  options.checkpoint = &checkpoint;
  std::atomic<bool> stop{false};
  options.stop = &stop;
  std::thread flipper([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(90));
    stop.store(true, std::memory_order_relaxed);
  });
  auto result = PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), options);
  flipper.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PipelineSummary& s = result->summary;
  EXPECT_GT(s.drained, 0u) << "stop landed too late to drain anything";
  EXPECT_EQ(s.tasks + s.drained + s.failed, corpus.size());
  // Every completed task was checkpointed; drained ones were not.
  EXPECT_EQ(checkpoint.appends(), s.tasks);

  // The drained remainder resumes to the full corpus.
  PipelineRun reference = ReferenceRun(corpus, PipelineOptions{});
  std::span<const NameSet> projectors(&XmarkProjector(), 1);
  PipelineOptions clean;
  clean.policy = ErrorPolicy::kIsolate;
  clean.num_threads = 2;
  ResumePlan plan = PlanResume(
      dir,
      ComputeCorpusBinding(corpus, projectors, clean,
                           "xmark-dashboard-merged"),
      false);
  ASSERT_TRUE(plan.resumable) << plan.mismatch;
  EXPECT_EQ(plan.skipped_completed, s.tasks);
  RunCheckpoint resumed;
  ASSERT_TRUE(resumed.OpenForAppend(dir).ok());
  clean.checkpoint = &resumed;
  clean.resume = &plan;
  auto final_run = PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), clean);
  ASSERT_TRUE(final_run.ok()) << final_run.status().ToString();
  EXPECT_EQ(final_run->summary.tasks, corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(ReadFileOrDie(RunCheckpoint::TaskOutputPath(dir, i)),
              reference.results[i].output)
        << "task " << i;
  }
}

// --- Watchdog -----------------------------------------------------------

TEST(WatchdogTest, WedgedTaskIsCancelledAndQuarantinedAsWatchdog) {
  std::vector<std::string> corpus = SmallCorpus(2);
  std::string dir = ScratchDir();
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 1;
  options.budget.deadline_ms = 25;
  options.watchdog_factor = 2.0;
  // One long stall inside the prune pass: the deadline check only fires
  // per SAX event, so the watchdog must cancel from outside.
  FaultInjector fault;
  ASSERT_TRUE(fault.ArmFromSpec("prune.element:delay:1:1:400").ok());
  options.fault = &fault;
  MetricsRegistry registry;
  options.metrics = &registry;
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  options.checkpoint = &checkpoint;
  auto result = PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_EQ(result->failures[0].stage, "watchdog");
  EXPECT_EQ(result->failures[0].status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_GE(registry.GetCounter("xmlproj_pipeline_watchdog_total")->Value(),
            1u);
  // The watchdog's provisional quarantine record plus the final one are
  // both on disk; the final record per task wins at resume time.
  CheckpointHeader header;
  std::vector<CheckpointTaskRecord> records;
  ASSERT_TRUE(RunCheckpoint::LoadCheckpoint(dir, &header, &records, nullptr,
                                            nullptr));
  bool saw_watchdog_stage = false;
  for (const CheckpointTaskRecord& r : records) {
    if (!r.completed && r.stage == "watchdog") saw_watchdog_stage = true;
  }
  EXPECT_TRUE(saw_watchdog_stage);
}

// --- Durability failpoints ----------------------------------------------

TEST(CheckpointFaultTest, CommitFailureFailsTheTaskWithCommitStage) {
  std::vector<std::string> corpus = SmallCorpus(2);
  std::string dir = ScratchDir();
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 1;
  FaultInjector fault;
  ASSERT_TRUE(fault.ArmFromSpec("pipeline.commit:unavailable:1:1").ok());
  options.fault = &fault;
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  options.checkpoint = &checkpoint;
  auto result = PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_EQ(result->failures[0].stage, "commit");
}

TEST(CheckpointFaultTest, AppendFailureFailsTheTaskWithCheckpointStage) {
  std::vector<std::string> corpus = SmallCorpus(2);
  std::string dir = ScratchDir();
  PipelineOptions options;
  options.policy = ErrorPolicy::kIsolate;
  options.num_threads = 1;
  FaultInjector fault;
  ASSERT_TRUE(fault.ArmFromSpec("checkpoint.append:unavailable:1:1").ok());
  options.fault = &fault;
  RunCheckpoint checkpoint;
  ASSERT_TRUE(checkpoint.Create(dir, SampleHeader(corpus, options)).ok());
  options.checkpoint = &checkpoint;
  auto result = PruneCorpus(corpus, XmarkDtd(), XmarkProjector(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_EQ(result->failures[0].stage, "checkpoint");
}

}  // namespace
}  // namespace xmlproj
