// Tests for intra-document chunked pruning (projection/chunked.h) and its
// pipeline integration.
//
// The load-bearing property is Theorem 4.5 carried across the intra-
// document shard dimension: because a type projector is a context-free
// name set, pruning the root's children as concurrent chunks and
// stitching in document order must be *byte-identical* to the sequential
// one-pass pruner — for every chunk size, every thread count, with and
// without fused validation. Everything the planner cannot prove safe must
// fall back to the sequential pass (still byte-identical, trivially).

#include "projection/chunked.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/thread_pool.h"
#include "dtd/dtd_parser.h"
#include "obs/metrics.h"
#include "projection/pipeline.h"
#include "projection/projection.h"
#include "xmark/corpus.h"
#include "xmark/generator.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

const Dtd& XmarkDtd() {
  static const Dtd* dtd = new Dtd(std::move(LoadXMarkDtd()).value());
  return *dtd;
}

const NameSet& DashboardProjector() {
  static const NameSet* p = new NameSet(
      std::move(WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload()))
          .value());
  return *p;
}

// The sequential reference pass, with stats.
std::string ReferencePrune(const std::string& xml_text, const Dtd& dtd,
                           const NameSet& projector, bool validate,
                           PruneStats* stats = nullptr) {
  std::string out;
  SerializingHandler sink(&out);
  if (validate) {
    ValidatingPruner pruner(dtd, projector, &sink);
    Status status = ParseXmlStream(xml_text, &pruner);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (stats != nullptr) *stats = pruner.stats();
  } else {
    StreamingPruner pruner(dtd, projector, &sink);
    Status status = ParseXmlStream(xml_text, &pruner);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (stats != nullptr) *stats = pruner.stats();
  }
  return out;
}

IntraDocOptions TestOptions(int threads, size_t chunk_bytes) {
  IntraDocOptions o;
  o.threads = threads;
  o.chunk_bytes = chunk_bytes;
  o.min_doc_bytes = 0;  // exercise small documents too
  return o;
}

// --- planner ---------------------------------------------------------------

TEST(ChunkPlanTest, CoversEveryChildInOrder) {
  XMarkOptions gen;
  gen.scale = 0.002;
  gen.seed = 11;
  std::string xml = GenerateXMarkText(gen);
  auto plan = PlanChunks(xml, XmarkDtd(), DashboardProjector(),
                         /*validate=*/false, TestOptions(4, 16 << 10));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->root_tag, "site");
  ASSERT_GE(plan->chunks.size(), 2u);
  size_t next_child = 0;
  size_t last_end = 0;
  for (const PlannedChunk& c : plan->chunks) {
    EXPECT_EQ(c.first_child, next_child);
    EXPECT_GT(c.child_count, 0u);
    EXPECT_GE(c.begin, last_end);
    EXPECT_LT(c.begin, c.end);
    next_child += c.child_count;
    last_end = c.end;
  }
  EXPECT_EQ(next_child, plan->total_children);
}

TEST(ChunkPlanTest, DeclinesSmallDocuments) {
  std::string xml = "<site><regions></regions></site>";
  IntraDocOptions o = TestOptions(4, 1 << 10);
  o.min_doc_bytes = 1 << 20;  // doc is far below the gate
  EXPECT_FALSE(PlanChunks(xml, XmarkDtd(), DashboardProjector(),
                          /*validate=*/false, o)
                   .has_value());
}

TEST(ChunkPlanTest, DeclinesTextOnlyChildrenRoot) {
  auto dtd = ParseDtd("<!ELEMENT r (#PCDATA)>", "r");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  NameSet projector(dtd->name_count());
  projector.Add(dtd->root());
  std::string xml = "<r>nothing but character data in here</r>";
  EXPECT_FALSE(PlanChunks(xml, *dtd, projector, /*validate=*/false,
                          TestOptions(4, 4))
                   .has_value());
  EXPECT_FALSE(PlanChunks(xml, *dtd, projector, /*validate=*/true,
                          TestOptions(4, 4))
                   .has_value());
}

TEST(ChunkPlanTest, DeclinesWhenRootOutsideProjector) {
  auto dtd = ParseDtd("<!ELEMENT r (a*)><!ELEMENT a EMPTY>", "r");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  NameSet empty(dtd->name_count());
  std::string xml = "<r><a/><a/><a/><a/></r>";
  EXPECT_FALSE(
      PlanChunks(xml, *dtd, empty, /*validate=*/false, TestOptions(2, 4))
          .has_value());
}

TEST(ChunkPlanTest, DeclinesInvalidContentUnderValidation) {
  // Root content model forbids <b>; plan-time validation must refuse so
  // the sequential pass owns the diagnostic.
  auto dtd = ParseDtd("<!ELEMENT r (a*)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>",
                      "r");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  NameSet projector(dtd->name_count());
  projector.Add(dtd->root());
  std::string xml = "<r><a/><b/><a/><a/></r>";
  EXPECT_FALSE(
      PlanChunks(xml, *dtd, projector, /*validate=*/true, TestOptions(2, 4))
          .has_value());
  // Without fused validation the same document plans fine.
  EXPECT_TRUE(PlanChunks(xml, *dtd, projector, /*validate=*/false,
                         TestOptions(2, 4))
                  .has_value());
}

// --- chunked run == sequential, directly -----------------------------------

void ExpectChunkedMatchesSequential(const std::string& xml, const Dtd& dtd,
                                    const NameSet& projector, bool validate,
                                    int threads, size_t chunk_bytes,
                                    ThreadPool* pool) {
  auto plan = PlanChunks(xml, dtd, projector, validate,
                         TestOptions(threads, chunk_bytes));
  ASSERT_TRUE(plan.has_value());
  ChunkRunContext context;
  context.pool = pool;
  context.max_helpers = threads - 1;
  std::string output;
  PruneStats stats;
  size_t peak = 0;
  Status status = RunChunkedPrune(xml, dtd, projector, validate, *plan,
                                  context, &output, &stats, &peak);
  ASSERT_TRUE(status.ok()) << status.ToString();
  PruneStats want_stats;
  std::string want =
      ReferencePrune(xml, dtd, projector, validate, &want_stats);
  EXPECT_EQ(output, want) << "chunked output diverges (threads=" << threads
                          << ", chunk_bytes=" << chunk_bytes
                          << ", validate=" << validate << ")";
  EXPECT_EQ(stats.input_nodes, want_stats.input_nodes);
  EXPECT_EQ(stats.kept_nodes, want_stats.kept_nodes);
  EXPECT_EQ(stats.input_text_bytes, want_stats.input_text_bytes);
  EXPECT_EQ(stats.kept_text_bytes, want_stats.kept_text_bytes);
}

TEST(ChunkedPruneTest, ByteIdenticalAndStatsMatchOnXMark) {
  XMarkOptions gen;
  gen.scale = 0.002;
  gen.seed = 3;
  std::string xml = GenerateXMarkText(gen);
  ThreadPool pool(4);
  for (bool validate : {false, true}) {
    for (size_t chunk_bytes : {size_t{1} << 10, size_t{64} << 10, xml.size()}) {
      ExpectChunkedMatchesSequential(xml, XmarkDtd(), DashboardProjector(),
                                     validate, 4, chunk_bytes, &pool);
    }
  }
}

TEST(ChunkedPruneTest, InlineWithoutPool) {
  XMarkOptions gen;
  gen.scale = 0.001;
  gen.seed = 5;
  std::string xml = GenerateXMarkText(gen);
  ExpectChunkedMatchesSequential(xml, XmarkDtd(), DashboardProjector(),
                                 /*validate=*/true, 2, 1 << 10,
                                 /*pool=*/nullptr);
}

TEST(ChunkedPruneTest, FullyPrunedChildrenStitchToSequentialForm) {
  // Projector keeps only the root: every chunk serializes to nothing and
  // the stitched result must still match the sequential `<r/>` form.
  auto dtd = ParseDtd("<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>", "r");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  NameSet projector(dtd->name_count());
  projector.Add(dtd->root());
  std::string xml = "<r><a>one</a><a>two</a><a>three</a><a>four</a></r>";
  ExpectChunkedMatchesSequential(xml, *dtd, projector, /*validate=*/false, 2,
                                 /*chunk_bytes=*/8, /*pool=*/nullptr);
  ExpectChunkedMatchesSequential(xml, *dtd, projector, /*validate=*/true, 2,
                                 /*chunk_bytes=*/8, /*pool=*/nullptr);
}

TEST(ChunkedPruneTest, RootAttributesRoundTrip) {
  auto dtd = ParseDtd(
      "<!ELEMENT r (a*)><!ELEMENT a EMPTY>"
      "<!ATTLIST r id CDATA #REQUIRED note CDATA #IMPLIED>",
      "r");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  NameSet projector(dtd->name_count());
  projector.Add(dtd->root());
  projector.Add(dtd->NameOfTag("a"));
  std::string xml =
      "<r id=\"x&amp;y\" note='a &lt; b'><a/><a/><a/><a/></r>";
  ExpectChunkedMatchesSequential(xml, *dtd, projector, /*validate=*/false, 2,
                                 /*chunk_bytes=*/4, /*pool=*/nullptr);
  ExpectChunkedMatchesSequential(xml, *dtd, projector, /*validate=*/true, 2,
                                 /*chunk_bytes=*/4, /*pool=*/nullptr);
}

TEST(ChunkedPruneTest, SharedBudgetAborts) {
  XMarkOptions gen;
  gen.scale = 0.001;
  gen.seed = 9;
  std::string xml = GenerateXMarkText(gen);
  auto plan = PlanChunks(xml, XmarkDtd(), DashboardProjector(),
                         /*validate=*/false, TestOptions(2, 1 << 10));
  ASSERT_TRUE(plan.has_value());
  ChunkRunContext context;
  context.max_bytes = 64;  // far below any chunk's output
  std::string output;
  PruneStats stats;
  size_t peak = 0;
  Status status =
      RunChunkedPrune(xml, XmarkDtd(), DashboardProjector(),
                      /*validate=*/false, *plan, context, &output, &stats,
                      &peak);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << status.ToString();
  EXPECT_TRUE(output.empty());
  EXPECT_GT(peak, 64u);
}

// --- the pipeline property: chunked == sequential, full matrix --------------

TEST(ChunkedPipelineTest, ByteIdenticalAcrossChunkSizesAndThreads) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 4;
  corpus_options.scale = 0.001;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  // Include a document far smaller than one chunk: it must still come out
  // byte-identical whether the planner chunks it or falls back.
  XMarkOptions tiny;
  tiny.scale = 0.0001;
  tiny.seed = 42;
  corpus.push_back(GenerateXMarkText(tiny));

  std::vector<std::string> expected;
  std::vector<std::string> expected_validated;
  for (const std::string& doc : corpus) {
    expected.push_back(
        ReferencePrune(doc, XmarkDtd(), DashboardProjector(), false));
    expected_validated.push_back(
        ReferencePrune(doc, XmarkDtd(), DashboardProjector(), true));
  }

  for (int threads : {1, 2, 8}) {
    for (size_t chunk_bytes :
         {size_t{1} << 10, size_t{64} << 10, size_t{128} << 20}) {
      for (bool validate : {false, true}) {
        PipelineOptions options;
        options.num_threads = 1;
        options.validate = validate;
        options.intra_doc = TestOptions(threads, chunk_bytes);
        auto run = PruneCorpus(corpus, XmarkDtd(), DashboardProjector(),
                               options);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        const auto& want = validate ? expected_validated : expected;
        for (size_t i = 0; i < corpus.size(); ++i) {
          EXPECT_EQ(run->results[i].output, want[i])
              << "doc " << i << " threads=" << threads
              << " chunk_bytes=" << chunk_bytes << " validate=" << validate;
        }
      }
    }
  }
}

TEST(ChunkedPipelineTest, ComposesWithDocLevelParallelism) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 6;
  corpus_options.scale = 0.001;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);

  PipelineOptions options;
  options.num_threads = 3;  // documents in parallel...
  options.intra_doc = TestOptions(4, 1 << 10);  // ...and chunks within each
  auto run = PruneCorpus(corpus, XmarkDtd(), DashboardProjector(), options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(run->results[i].output,
              ReferencePrune(corpus[i], XmarkDtd(), DashboardProjector(),
                             false))
        << "document " << i;
  }
}

TEST(ChunkedPipelineTest, SequentialFallbackBelowMinDocBytes) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 2;
  corpus_options.scale = 0.001;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);

  MetricsRegistry metrics;
  PipelineOptions options;
  options.num_threads = 1;
  options.metrics = &metrics;
  options.intra_doc.threads = 4;  // enabled, but min_doc_bytes (default
                                  // 256 KB) exceeds every document
  auto run = PruneCorpus(corpus, XmarkDtd(), DashboardProjector(), options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(metrics.GetCounter("xmlproj_chunks_total")->Value(), 0u);
  EXPECT_EQ(metrics.GetCounter("xmlproj_pipeline_chunk_fallbacks_total")
                ->Value(),
            corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(run->results[i].output,
              ReferencePrune(corpus[i], XmarkDtd(), DashboardProjector(),
                             false));
  }
}

TEST(ChunkedPipelineTest, PublishesChunkMetrics) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 2;
  corpus_options.scale = 0.001;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);

  MetricsRegistry metrics;
  PipelineOptions options;
  options.num_threads = 1;
  options.metrics = &metrics;
  options.intra_doc = TestOptions(2, 4 << 10);
  auto run = PruneCorpus(corpus, XmarkDtd(), DashboardProjector(), options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GE(metrics.GetCounter("xmlproj_chunks_total")->Value(),
            2 * corpus.size());
  EXPECT_EQ(metrics.GetCounter("xmlproj_pipeline_chunked_docs_total")->Value(),
            corpus.size());
  EXPECT_GT(metrics.GetHistogram("xmlproj_chunk_split_ns")->Count(), 0u);
  EXPECT_GT(metrics.GetHistogram("xmlproj_chunk_stitch_ns")->Count(), 0u);
  EXPECT_GT(metrics.GetHistogram("xmlproj_chunk_run_ns")->Count(), 0u);
}

TEST(ChunkedPipelineTest, TextOnlyChildrenRootFallsBackThroughPipeline) {
  // A root whose children are character data has no element boundaries to
  // split at: the planner declines and the pipeline's sequential pass
  // must produce the answer (byte-identical, trivially).
  auto dtd = ParseDtd("<!ELEMENT r (#PCDATA)>", "r");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  NameSet projector(dtd->name_count());
  projector.Add(dtd->root());
  std::vector<std::string> corpus = {
      "<r>nothing but character data, no element boundaries to split</r>"};

  MetricsRegistry metrics;
  PipelineOptions options;
  options.num_threads = 1;
  options.metrics = &metrics;
  options.intra_doc = TestOptions(4, 4);
  auto run = PruneCorpus(corpus, *dtd, projector, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(metrics.GetCounter("xmlproj_chunks_total")->Value(), 0u);
  EXPECT_EQ(
      metrics.GetCounter("xmlproj_pipeline_chunk_fallbacks_total")->Value(),
      1u);
  EXPECT_EQ(run->results[0].output,
            ReferencePrune(corpus[0], *dtd, projector, false));
}

TEST(ChunkedPipelineTest, ChunkBudgetFailureQuarantinesDocument) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 3;
  corpus_options.scale = 0.001;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);

  PipelineOptions options;
  options.num_threads = 1;
  options.intra_doc = TestOptions(2, 1 << 10);
  options.policy = ErrorPolicy::kIsolate;
  options.budget.max_bytes = 256;  // every document blows the budget
  auto run = PruneCorpus(corpus, XmarkDtd(), DashboardProjector(), options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), corpus.size());
  for (const TaskFailure& f : run->failures) {
    EXPECT_EQ(f.status.code(), StatusCode::kResourceExhausted)
        << f.status.ToString();
    EXPECT_EQ(f.stage, "budget");
    EXPECT_TRUE(run->results[f.task].output.empty());
  }
}

}  // namespace
}  // namespace xmlproj
