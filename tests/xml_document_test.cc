#include "xml/document.h"

#include <gtest/gtest.h>

namespace xmlproj {
namespace {

TEST(SymbolTable, InternReturnsStableIds) {
  SymbolTable table;
  TagId a = table.Intern("alpha");
  TagId b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, table.Intern("alpha"));
  EXPECT_EQ(b, table.Lookup("beta"));
  EXPECT_EQ(kNoTag, table.Lookup("gamma"));
  EXPECT_EQ("alpha", table.NameOf(a));
  EXPECT_EQ(2u, table.size());
}

Document BuildSample() {
  // <a x="1"><b>hi</b><c/><b>yo</b></a>
  DocumentBuilder builder;
  builder.StartElement("a");
  builder.AddAttribute("x", "1");
  builder.StartElement("b");
  builder.AddText("hi");
  builder.EndElement();
  builder.StartElement("c");
  builder.EndElement();
  builder.StartElement("b");
  builder.AddText("yo");
  builder.EndElement();
  builder.EndElement();
  auto result = builder.Finish();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(DocumentBuilder, BuildsPreorderIds) {
  Document doc = BuildSample();
  // document node + a + b + text + c + b + text = 7 nodes.
  ASSERT_EQ(7u, doc.size());
  EXPECT_EQ(NodeKind::kDocument, doc.kind(0));
  NodeId root = doc.root();
  EXPECT_EQ(1u, root);
  EXPECT_EQ("a", doc.tag_name(root));
  EXPECT_EQ(7u, doc.node(root).subtree_end);
  EXPECT_EQ(6u, doc.content_node_count());
}

TEST(DocumentBuilder, SiblingLinks) {
  Document doc = BuildSample();
  NodeId b1 = doc.node(doc.root()).first_child;
  EXPECT_EQ("b", doc.tag_name(b1));
  NodeId c = doc.node(b1).next_sibling;
  EXPECT_EQ("c", doc.tag_name(c));
  NodeId b2 = doc.node(c).next_sibling;
  EXPECT_EQ("b", doc.tag_name(b2));
  EXPECT_EQ(kNullNode, doc.node(b2).next_sibling);
  EXPECT_EQ(c, doc.node(b2).prev_sibling);
  EXPECT_EQ(doc.root(), doc.node(b2).parent);
}

TEST(Document, Attributes) {
  Document doc = BuildSample();
  NodeId root = doc.root();
  ASSERT_EQ(1u, doc.attr_count(root));
  EXPECT_EQ("1", doc.attr(root, 0).value);
  const std::string* v = doc.FindAttribute(root, "x");
  ASSERT_NE(nullptr, v);
  EXPECT_EQ("1", *v);
  EXPECT_EQ(nullptr, doc.FindAttribute(root, "missing"));
}

TEST(Document, StringValueConcatenatesDescendantText) {
  Document doc = BuildSample();
  EXPECT_EQ("hiyo", doc.StringValue(doc.root()));
  NodeId b1 = doc.node(doc.root()).first_child;
  EXPECT_EQ("hi", doc.StringValue(b1));
}

TEST(Document, TextNodeSubtreeEnd) {
  Document doc = BuildSample();
  NodeId b1 = doc.node(doc.root()).first_child;
  NodeId text = doc.node(b1).first_child;
  EXPECT_EQ(NodeKind::kText, doc.kind(text));
  EXPECT_EQ(text + 1, doc.node(text).subtree_end);
  EXPECT_EQ("hi", doc.text(text));
}

TEST(DocumentBuilder, FinishFailsWithOpenElements) {
  DocumentBuilder builder;
  builder.StartElement("a");
  auto result = builder.Finish();
  EXPECT_FALSE(result.ok());
}

TEST(Document, MemoryBytesGrowsWithContent) {
  Document doc = BuildSample();
  size_t base = doc.MemoryBytes();
  EXPECT_GT(base, 0u);

  DocumentBuilder builder;
  builder.StartElement("a");
  for (int i = 0; i < 100; ++i) {
    builder.StartElement("b");
    builder.AddText("some longer text content to count");
    builder.EndElement();
  }
  builder.EndElement();
  Document bigger = std::move(builder.Finish()).value();
  EXPECT_GT(bigger.MemoryBytes(), base);
}

TEST(Document, EmptyDocumentHasNoRoot) {
  DocumentBuilder builder;
  Document doc = std::move(builder.Finish()).value();
  EXPECT_EQ(kNullNode, doc.root());
}

}  // namespace
}  // namespace xmlproj
