// Tests for the projection service daemon (service/service.h) and its
// client library (service/client.h): byte parity with the batch pipeline
// for every XMark dashboard workload (merged and per-query, validate on
// and off), projector-cache hit/miss/eviction accounting, circuit-breaker
// admission (503 + Retry-After with /healthz agreeing), error mapping,
// GET /workloads content, journal batch flushing, and concurrent prunes
// over distinct workloads (the TSan target).

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/circuit.h"
#include "common/http/http.h"
#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "projection/pipeline.h"
#include "service/client.h"
#include "service/service.h"
#include "xmark/corpus.h"
#include "xmark/queries.h"
#include "xmark/xmark_dtd.h"

namespace xmlproj {
namespace {

// The dashboard workload as a POST /workloads spec.
std::string SpecFor(const std::vector<BenchmarkQuery>& queries) {
  std::string spec;
  for (const BenchmarkQuery& query : queries) {
    spec += query.id;
    spec += '\t';
    spec += query.language == QueryLanguage::kXQuery ? "xquery" : "xpath";
    spec += '\t';
    spec += query.text;
    spec += '\n';
  }
  return spec;
}

class ServiceTest : public ::testing::Test {
 protected:
  void StartService(ProjectionServiceOptions options = {}) {
    options.metrics = &metrics_;
    std::string error;
    ASSERT_TRUE(service_.RegisterDtd("xmark", XMarkDtdText(), "site", &error))
        << error;
    ASSERT_TRUE(service_.Start(options, &error)) << error;
    client_options_.port = service_.port();
  }

  ProjectionClient Client() { return ProjectionClient(client_options_); }

  MetricsRegistry metrics_;
  ProjectionService service_;
  ProjectionClientOptions client_options_;
};

TEST_F(ServiceTest, PruneMatchesBatchPipelineForEveryWorkload) {
  StartService();
  ProjectionClient client = Client();

  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 2;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto dtd = LoadXMarkDtd();
  ASSERT_TRUE(dtd.ok());

  // The merged dashboard workload plus each query as its own workload:
  // five workloads, every one checked for byte parity against the batch
  // pipeline, with validation both off and on.
  std::vector<std::vector<BenchmarkQuery>> workloads;
  workloads.push_back(XMarkDashboardWorkload());
  for (const BenchmarkQuery& query : XMarkDashboardWorkload()) {
    workloads.push_back({query});
  }

  for (const auto& workload : workloads) {
    auto registration = client.RegisterWorkload(SpecFor(workload));
    ASSERT_TRUE(registration.ok()) << registration.status().ToString();

    auto projector = WorkloadProjector(*dtd, workload);
    ASSERT_TRUE(projector.ok());
    for (bool validate : {false, true}) {
      PipelineOptions batch_options;
      batch_options.validate = validate;
      auto batch = PruneCorpus(corpus, *dtd, *projector, batch_options);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();

      for (size_t i = 0; i < corpus.size(); ++i) {
        PruneRequestOptions prune_options;
        prune_options.validate = validate;
        auto outcome =
            client.Prune(registration->id, corpus[i], prune_options);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        EXPECT_EQ(outcome->output, batch->results[i].output)
            << "workload " << workload[0].id << " doc " << i
            << " validate=" << validate;
      }
    }
  }
}

TEST_F(ServiceTest, RepeatedPruneIsServedFromProjectorCache) {
  StartService();
  ProjectionClient client = Client();

  auto registration = client.RegisterWorkload(
      SpecFor({XMarkDashboardWorkload()[1]}));  // "sellers", XPath
  ASSERT_TRUE(registration.ok());
  EXPECT_FALSE(registration->cache_hit);  // first sight compiles

  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 1;
  std::string doc = GenerateXMarkCorpus(corpus_options)[0];

  for (int i = 0; i < 3; ++i) {
    auto outcome = client.Prune(registration->id, doc);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->cache_hit);  // registration populated the cache
  }

  // Registration missed once; every prune hit.
  EXPECT_EQ(service_.cache()->misses(), 1u);
  EXPECT_EQ(service_.cache()->hits(), 3u);
  EXPECT_EQ(service_.cache()->evictions(), 0u);
  EXPECT_EQ(metrics_.GetCounter("xmlproj_projector_cache_hits_total")->Value(),
            3u);
  EXPECT_EQ(
      metrics_.GetCounter("xmlproj_projector_cache_misses_total")->Value(),
      1u);

  // Re-registering the identical workload is an idempotent cache hit.
  auto again = client.RegisterWorkload(SpecFor({XMarkDashboardWorkload()[1]}));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->id, registration->id);
  EXPECT_TRUE(again->cache_hit);

  std::vector<WorkloadInfo> infos = service_.ListWorkloads();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].prunes, 3u);
  EXPECT_EQ(infos[0].cache_hits, 3u);
  EXPECT_EQ(infos[0].failures, 0u);
}

TEST_F(ServiceTest, LruEvictionForcesRecompileAndCounts) {
  ProjectionServiceOptions options;
  options.limits.projector_cache_capacity = 1;
  StartService(options);
  ProjectionClient client = Client();

  auto first = client.RegisterWorkload(SpecFor({XMarkDashboardWorkload()[1]}));
  ASSERT_TRUE(first.ok());
  // Second registration evicts the first projector (capacity 1).
  auto second =
      client.RegisterWorkload(SpecFor({XMarkDashboardWorkload()[3]}));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service_.cache()->evictions(), 1u);

  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 1;
  corpus_options.scale = 0.001;
  std::string doc = GenerateXMarkCorpus(corpus_options)[0];

  // Pruning the evicted workload recompiles (miss), and the result is
  // still correct — eviction affects latency, never bytes.
  auto outcome = client.Prune(first->id, doc);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->cache_hit);
  EXPECT_GE(service_.cache()->evictions(), 2u);  // recompile evicted #2

  auto dtd = LoadXMarkDtd();
  ASSERT_TRUE(dtd.ok());
  std::vector<BenchmarkQuery> sellers{XMarkDashboardWorkload()[1]};
  auto projector = WorkloadProjector(*dtd, sellers);
  ASSERT_TRUE(projector.ok());
  auto batch = PruneDocument(doc, *dtd, *projector);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(outcome->output, batch->results[0].output);
}

TEST_F(ServiceTest, OpenBreakerFastFails503AndHealthzAgrees) {
  CircuitBreakerOptions breaker_options;
  breaker_options.window = 8;
  breaker_options.min_samples = 4;
  breaker_options.cooldown_ms = 60000;  // stays open for the whole test
  CircuitBreaker breaker(breaker_options);
  ProjectionServiceOptions options;
  options.breaker = &breaker;
  StartService(options);
  ProjectionClient client = Client();

  auto registration =
      client.RegisterWorkload(SpecFor({XMarkDashboardWorkload()[1]}));
  ASSERT_TRUE(registration.ok());

  // Seed an all-failure history: the breaker opens deterministically.
  breaker.Seed(0, 8);
  ASSERT_EQ(breaker.state(), CircuitState::kOpen);

  // /prune fast-fails with 503 + Retry-After, before any parsing.
  HttpClientResult raw;
  ASSERT_TRUE(HttpCall(service_.port(), "POST",
                       "/prune?workload=" + registration->id, "<site/>",
                       "application/xml", &raw));
  EXPECT_EQ(raw.status, 503);
  EXPECT_FALSE(raw.Header("retry-after").empty());

  // The client library maps it onto kUnavailable.
  auto outcome = client.Prune(registration->id, "<site/>");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);

  // /healthz — same process, same breaker — reports open with 503.
  ASSERT_TRUE(HttpCall(service_.port(), "GET", "/healthz", {}, {}, &raw));
  EXPECT_EQ(raw.status, 503);
  EXPECT_NE(raw.body.find("\"circuit\":\"open\""), std::string::npos)
      << raw.body;
}

TEST_F(ServiceTest, ErrorPathsMapOntoHttpStatuses) {
  StartService();
  ProjectionClient client = Client();

  // Unknown workload → 404 / kNotFound.
  auto missing = client.Prune("w-doesnotexist", "<site/>");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Missing ?workload= → 400.
  HttpClientResult raw;
  ASSERT_TRUE(HttpCall(service_.port(), "POST", "/prune", "<site/>",
                       "application/xml", &raw));
  EXPECT_EQ(raw.status, 400);

  // Bad workload spec → 400; unknown language too.
  auto bad_spec = client.RegisterWorkload("one\ttwo\tthree\tfour\n");
  EXPECT_EQ(bad_spec.status().code(), StatusCode::kInvalid);
  auto bad_lang = client.RegisterWorkload("sql\tSELECT 1\n");
  EXPECT_EQ(bad_lang.status().code(), StatusCode::kInvalid);

  // A spec that parses but fails query analysis → 422.
  auto bad_query = client.RegisterWorkload("xpath\t/site/\n");
  EXPECT_FALSE(bad_query.ok());

  // Unknown DTD → 404.
  auto bad_dtd =
      client.RegisterWorkload("xpath\t/site/regions\n", "unknown-dtd");
  EXPECT_EQ(bad_dtd.status().code(), StatusCode::kNotFound);

  auto registration =
      client.RegisterWorkload(SpecFor({XMarkDashboardWorkload()[1]}));
  ASSERT_TRUE(registration.ok());

  // Malformed document → 400 / parse error.
  auto malformed = client.Prune(registration->id, "<site><open");
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.status().code(), StatusCode::kInvalid);

  // A byte budget the document cannot fit → 413 / kResourceExhausted.
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 1;
  corpus_options.scale = 0.001;
  std::string doc = GenerateXMarkCorpus(corpus_options)[0];
  PruneRequestOptions tiny;
  tiny.max_bytes = 64;
  auto over_budget = client.Prune(registration->id, doc, tiny);
  ASSERT_FALSE(over_budget.ok());
  EXPECT_EQ(over_budget.status().code(), StatusCode::kResourceExhausted);

  // Failures are visible in the workload stats.
  std::vector<WorkloadInfo> infos = service_.ListWorkloads();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].failures, 2u);
  EXPECT_EQ(infos[0].prunes, 0u);
}

TEST_F(ServiceTest, ListWorkloadsReportsStatsAndCache) {
  StartService();
  ProjectionClient client = Client();
  auto registration =
      client.RegisterWorkload(SpecFor(XMarkDashboardWorkload()));
  ASSERT_TRUE(registration.ok());

  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 1;
  corpus_options.scale = 0.001;
  std::string doc = GenerateXMarkCorpus(corpus_options)[0];
  ASSERT_TRUE(client.Prune(registration->id, doc).ok());

  auto listing = client.ListWorkloads();
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing->find("\"id\":\"" + registration->id + "\""),
            std::string::npos)
      << *listing;
  EXPECT_NE(listing->find("\"prunes\":1"), std::string::npos);
  EXPECT_NE(listing->find("\"queries\":4"), std::string::npos);
  EXPECT_NE(listing->find("\"cache\":{"), std::string::npos);
  uint64_t hits = 0;
  EXPECT_TRUE(ExtractJsonU64Field(*listing, "hits", &hits));
  EXPECT_EQ(hits, 1u);
}

TEST_F(ServiceTest, JournalBatchesFlushAtSizeAndOnStop) {
  std::string dir = ::testing::TempDir() + "/service_journal_test";
  std::remove(RunJournal::PathFor(dir).c_str());  // stale prior-run journal
  ProjectionServiceOptions options;
  options.journal_dir = dir;
  options.limits.journal_batch = 2;
  StartService(options);
  ProjectionClient client = Client();

  auto registration =
      client.RegisterWorkload(SpecFor({XMarkDashboardWorkload()[1]}));
  ASSERT_TRUE(registration.ok());
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 1;
  corpus_options.scale = 0.001;
  std::string doc = GenerateXMarkCorpus(corpus_options)[0];

  // Two prunes fill one batch → one record; the third stays pending
  // until Stop flushes it.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Prune(registration->id, doc).ok());
  }
  std::vector<RunRecord> records;
  std::string error;
  ASSERT_TRUE(RunJournal::Load(dir, &records, nullptr, &error)) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].corpus, registration->id);
  EXPECT_EQ(records[0].tasks, 2u);
  EXPECT_GT(records[0].input_bytes, 0u);
  EXPECT_GT(records[0].peak_memory_bytes, 0u);

  service_.Stop();
  records.clear();
  ASSERT_TRUE(RunJournal::Load(dir, &records, nullptr, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].tasks, 1u);
}

TEST_F(ServiceTest, ConcurrentPruneDistinctWorkloads) {
  ProjectionServiceOptions options;
  options.limits.worker_threads = 4;
  StartService(options);
  ProjectionClient client = Client();

  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 1;
  corpus_options.scale = 0.001;
  std::string doc = GenerateXMarkCorpus(corpus_options)[0];
  auto dtd = LoadXMarkDtd();
  ASSERT_TRUE(dtd.ok());

  // One workload per dashboard query, each with its own expected bytes.
  struct Lane {
    std::string workload_id;
    std::string expected;
  };
  std::vector<Lane> lanes;
  for (const BenchmarkQuery& query : XMarkDashboardWorkload()) {
    auto registration = client.RegisterWorkload(SpecFor({query}));
    ASSERT_TRUE(registration.ok());
    std::vector<BenchmarkQuery> one{query};
    auto projector = WorkloadProjector(*dtd, one);
    ASSERT_TRUE(projector.ok());
    auto batch = PruneDocument(doc, *dtd, *projector);
    ASSERT_TRUE(batch.ok());
    lanes.push_back({registration->id, batch->results[0].output});
  }

  // Concurrent parity: every lane prunes the same source document and
  // must get its own workload's bytes back.
  constexpr int kPrunesPerLane = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (const Lane& lane : lanes) {
    threads.emplace_back([this, &doc, &lane, &mismatches, &failures] {
      ProjectionClient worker(client_options_);
      for (int i = 0; i < kPrunesPerLane; ++i) {
        auto outcome = worker.Prune(lane.workload_id, doc);
        if (!outcome.ok()) {
          failures.fetch_add(1);
        } else if (outcome->output != lane.expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Cache accounting adds up: 4 registration misses, and every service
  // prune was a hit (registration pinned all four in the cache).
  EXPECT_EQ(service_.cache()->misses(), 4u);
  EXPECT_GE(service_.cache()->hits(),
            static_cast<uint64_t>(lanes.size() * kPrunesPerLane));
}

// The acceptance path for request-scoped observability: a client
// traceparent on POST /prune yields a request span parenting the
// pipeline stage spans, retrievable via /tracez?trace_id=, present in
// the OTLP export, and joinable by trace id to an access-log line —
// with the RED series, the /statusz SLO block, and unknown-workload
// label folding along for the ride.
TEST_F(ServiceTest, TraceparentJoinsSpansExportLogsAndSlo) {
  char tmpl[] = "/tmp/xmlproj_svc_obs_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  std::string dir = tmpl;
  std::string log_path = dir + "/svc.log";

  TraceCollector trace;
  StructuredLogger logger;
  std::string error;
  ASSERT_TRUE(logger.Open(log_path, &error)) << error;
  SloTracker slo;

  ProjectionServiceOptions options;
  options.trace = &trace;
  options.logger = &logger;
  options.slo = &slo;
  StartService(options);
  ProjectionClient client = Client();

  auto registration =
      client.RegisterWorkload(SpecFor({XMarkDashboardWorkload()[1]}));
  ASSERT_TRUE(registration.ok()) << registration.status().ToString();

  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 1;
  std::string doc = GenerateXMarkCorpus(corpus_options)[0];

  constexpr char kTraceId[] = "4bf92f3577b34da6a3ce929d0e0e4736";
  PruneRequestOptions prune_options;
  prune_options.traceparent =
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
  auto outcome = client.Prune(registration->id, doc, prune_options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->trace_id, kTraceId);
  EXPECT_FALSE(outcome->request_id.empty());

  // An unknown workload 404s — and must fold to workload="other" in the
  // label set rather than minting a per-probe series.
  auto missing = client.Prune("w-nope", doc, prune_options);
  EXPECT_FALSE(missing.ok());

  // /tracez filtered by the trace id: the request span plus the stage
  // spans it parents, all stamped with the workload.
  auto tracez = client.Get(std::string("/tracez?trace_id=") + kTraceId);
  ASSERT_TRUE(tracez.ok()) << tracez.status().ToString();
  EXPECT_NE(tracez->find("\"name\":\"POST /prune\""), std::string::npos)
      << *tracez;
  EXPECT_NE(tracez->find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(tracez->find("\"name\":\"serialize\""), std::string::npos);
  EXPECT_NE(tracez->find("\"workload\":\"" + registration->id + "\""),
            std::string::npos);
  // Stage spans parent under *some* span of this trace; the request
  // span's own id came back to the client in the response traceparent.
  EXPECT_NE(tracez->find("\"parent_id\":"), std::string::npos);
  // A trace id that never happened filters down to nothing.
  auto empty = client.Get(
      "/tracez?trace_id=ffffffffffffffffffffffffffffffff");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->find("\"name\":"), std::string::npos);

  // The OTLP export carries the same trace.
  size_t cursor = 0;
  std::string otlp;
  ASSERT_TRUE(trace.AppendOtlpSpansJson(&cursor, &otlp));
  EXPECT_NE(otlp.find("\"resourceSpans\""), std::string::npos);
  EXPECT_NE(otlp.find(std::string("\"traceId\":\"") + kTraceId + "\""),
            std::string::npos);

  // The RED series and the SLO plane saw the prunes.
  auto metrics_json = client.Get("/metrics.json");
  ASSERT_TRUE(metrics_json.ok());
  EXPECT_NE(metrics_json->find("xmlproj_request_duration_seconds{"),
            std::string::npos);
  EXPECT_NE(metrics_json->find("workload=\\\"" + registration->id + "\\\""),
            std::string::npos);
  EXPECT_NE(metrics_json->find(
                "code=\\\"404\\\",route=\\\"/prune\\\",workload=\\\"other\\\""),
            std::string::npos)
      << *metrics_json;

  auto statusz = client.Get("/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_NE(statusz->find("\"slo\":"), std::string::npos);
  EXPECT_NE(statusz->find("\"workload\":\"" + registration->id + "\""),
            std::string::npos);
  EXPECT_EQ(slo.Burn(registration->id, 5).requests, 1u);
  EXPECT_EQ(slo.Burn("other", 5).requests, 1u);

  // The access log joins the trace by trace_id — stop first so the
  // observer has certainly run and the line is flushed.
  service_.Stop();
  logger.Close();
  std::ifstream in(log_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string log_text = buffer.str();
  bool joined = false;
  std::istringstream lines(log_text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"event\":\"http.access\"") != std::string::npos &&
        line.find(std::string("\"trace_id\":\"") + kTraceId + "\"") !=
            std::string::npos &&
        line.find("\"path\":\"/prune\"") != std::string::npos) {
      joined = true;
      EXPECT_NE(line.find("\"status\":200"), std::string::npos);
      EXPECT_NE(line.find("\"workload\":\"" + registration->id + "\""),
                std::string::npos);
      break;
    }
  }
  EXPECT_TRUE(joined) << log_text;

  std::remove(log_path.c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace xmlproj
