#include "xpath/evaluator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xmlproj {
namespace {

constexpr char kLibrary[] = R"(
<library>
  <book isbn="1"><title>Inferno</title><author>Dante</author>
    <year>1313</year></book>
  <book isbn="2"><title>Purgatorio</title><author>Dante</author>
    <year>1315</year></book>
  <book isbn="3"><title>Decameron</title><author>Boccaccio</author>
    <year>1353</year></book>
  <shelf><book isbn="4"><title>Vita Nova</title><author>Dante</author>
    <year>1294</year></book></shelf>
</library>
)";

class XPathEvalTest : public ::testing::Test {
 protected:
  XPathEvalTest() : doc_(std::move(ParseXml(kLibrary)).value()) {}

  // Evaluates from the document node and returns tag names / text of the
  // selected nodes in document order.
  std::vector<std::string> Select(std::string_view query) {
    auto path = ParseXPath(query);
    EXPECT_TRUE(path.ok()) << query << ": " << path.status().ToString();
    if (!path.ok()) return {};
    XPathEvaluator eval(doc_);
    auto nodes = eval.EvaluateFromRoot(*path);
    EXPECT_TRUE(nodes.ok()) << query << ": " << nodes.status().ToString();
    if (!nodes.ok()) return {};
    std::vector<std::string> out;
    for (const XNode& n : *nodes) {
      if (n.attr >= 0) {
        out.push_back("@" + doc_.attr(n.node, n.attr).value);
      } else if (doc_.kind(n.node) == NodeKind::kText) {
        out.push_back(doc_.text(n.node));
      } else if (doc_.kind(n.node) == NodeKind::kDocument) {
        out.push_back("#document");
      } else {
        out.push_back(doc_.tag_name(n.node));
      }
    }
    return out;
  }

  XPathValue Value(std::string_view expr_text) {
    auto expr = ParseXPathExpr(expr_text);
    EXPECT_TRUE(expr.ok()) << expr_text;
    XPathEvaluator eval(doc_);
    auto v = eval.EvaluateExpr(**expr, XNode{doc_.document_node(), -1});
    EXPECT_TRUE(v.ok()) << expr_text << ": " << v.status().ToString();
    return v.ok() ? std::move(*v) : XPathValue();
  }

  Document doc_;
};

TEST_F(XPathEvalTest, ChildSteps) {
  EXPECT_EQ((std::vector<std::string>{"book", "book", "book"}),
            Select("/library/book"));
  EXPECT_EQ((std::vector<std::string>{"Inferno", "Purgatorio", "Decameron"}),
            Select("/library/book/title/text()"));
}

TEST_F(XPathEvalTest, DescendantAndWildcard) {
  EXPECT_EQ(4u, Select("//book").size());
  EXPECT_EQ(4u, Select("/library//book").size());
  EXPECT_EQ(4u, Select("//shelf/ancestor::node()/descendant::book").size());
  EXPECT_EQ((std::vector<std::string>{"book", "book", "book", "shelf"}),
            Select("/library/*"));
}

TEST_F(XPathEvalTest, PredicatesOnValues) {
  EXPECT_EQ((std::vector<std::string>{"Inferno", "Purgatorio", "Vita Nova"}),
            Select("//book[author = 'Dante']/title/text()"));
  EXPECT_EQ((std::vector<std::string>{"Decameron"}),
            Select("//book[year > 1320]/title/text()"));
}

TEST_F(XPathEvalTest, PositionPredicates) {
  EXPECT_EQ((std::vector<std::string>{"Inferno"}),
            Select("/library/book[1]/title/text()"));
  EXPECT_EQ((std::vector<std::string>{"Decameron"}),
            Select("/library/book[last()]/title/text()"));
  EXPECT_EQ((std::vector<std::string>{"Purgatorio", "Decameron"}),
            Select("/library/book[position() > 1]/title/text()"));
}

TEST_F(XPathEvalTest, PaperQueryBackwardAxes) {
  // §3's Q: titles of books whose author is Dante, via text + parent.
  EXPECT_EQ(
      (std::vector<std::string>{"title", "title", "title"}),
      Select("/descendant::author/child::text()[self::node() = 'Dante']"
             "/parent::node()/parent::node()/child::title"));
}

TEST_F(XPathEvalTest, AncestorAxis) {
  EXPECT_EQ((std::vector<std::string>{"#document", "library", "shelf"}),
            Select("//shelf/book/ancestor::node()"));
  EXPECT_EQ((std::vector<std::string>{"library", "shelf"}),
            Select("//shelf/book/ancestor::*"));
}

TEST_F(XPathEvalTest, SiblingAxes) {
  EXPECT_EQ((std::vector<std::string>{"book", "book", "shelf"}),
            Select("/library/book[1]/following-sibling::node()"));
  EXPECT_EQ((std::vector<std::string>{"book", "book"}),
            Select("/library/shelf/preceding-sibling::node()[year < 1350]"));
}

TEST_F(XPathEvalTest, FollowingPreceding) {
  // following of first book: 3 authors follow (books 2, 3 and shelf's).
  EXPECT_EQ(3u, Select("/library/book[1]/following::author").size());
  EXPECT_EQ(3u, Select("/library/shelf/preceding::title").size());
  // preceding excludes ancestors.
  EXPECT_TRUE(Select("//author[1]/preceding::library").empty());
}

TEST_F(XPathEvalTest, Attributes) {
  EXPECT_EQ((std::vector<std::string>{"@1", "@2", "@3", "@4"}),
            Select("//book/@isbn"));
  EXPECT_EQ((std::vector<std::string>{"Purgatorio"}),
            Select("//book[@isbn = '2']/title/text()"));
  EXPECT_EQ((std::vector<std::string>{"book"}),
            Select("//book/@isbn[. = '4']/parent::node()"));
}

TEST_F(XPathEvalTest, TextTest) {
  EXPECT_EQ(4u, Select("//author/text()").size());
  EXPECT_TRUE(Select("//book/text()").empty());  // element content only
}

TEST_F(XPathEvalTest, FunctionsOverNodeSets) {
  EXPECT_EQ(4.0, Value("count(//book)").number);
  EXPECT_EQ(0.0, Value("count(//missing)").number);
  EXPECT_TRUE(Value("empty(//missing)").boolean);
  EXPECT_FALSE(Value("empty(//book)").boolean);
  EXPECT_EQ(1313.0 + 1315 + 1353 + 1294, Value("sum(//year)").number);
  EXPECT_EQ("Inferno", Value("string(//title)").string);
  EXPECT_EQ(1313.0, Value("number(//year)").number);
  EXPECT_EQ("book", Value("name(//book)").string);
}

TEST_F(XPathEvalTest, StringFunctions) {
  EXPECT_TRUE(Value("contains('Dante Alighieri', 'Ali')").boolean);
  EXPECT_FALSE(Value("starts-with('Dante', 'ante')").boolean);
  EXPECT_EQ("ab", Value("concat('a', 'b')").string);
  EXPECT_EQ(5.0, Value("string-length('Dante')").number);
}

TEST_F(XPathEvalTest, Aggregates) {
  EXPECT_EQ((1313.0 + 1315 + 1353 + 1294) / 4, Value("avg(//year)").number);
  EXPECT_EQ(1353.0, Value("max(//year)").number);
  EXPECT_EQ(1294.0, Value("min(//year)").number);
  EXPECT_TRUE(std::isnan(Value("avg(//missing)").number));
  EXPECT_TRUE(std::isnan(Value("max(//missing)").number));
}

TEST_F(XPathEvalTest, SubstringFamily) {
  EXPECT_EQ("ant", Value("substring('Dante', 2, 3)").string);
  EXPECT_EQ("ante", Value("substring('Dante', 2)").string);
  EXPECT_EQ("Da", Value("substring('Dante', 0, 3)").string);  // W3C example
  EXPECT_EQ("", Value("substring('Dante', 10)").string);
  EXPECT_EQ("D", Value("substring-before('Dante', 'ant')").string);
  EXPECT_EQ("e", Value("substring-after('Dante', 'ant')").string);
  EXPECT_EQ("", Value("substring-before('Dante', 'zz')").string);
}

TEST_F(XPathEvalTest, NormalizeSpaceAndTranslate) {
  EXPECT_EQ("a b c", Value("normalize-space('  a \t b \n c  ')").string);
  EXPECT_EQ("", Value("normalize-space('   ')").string);
  EXPECT_EQ("BAr", Value("translate('bar', 'ab', 'AB')").string);
  EXPECT_EQ("AAA", Value("translate('A-A-A', '-', '')").string);
}

TEST_F(XPathEvalTest, Arithmetic) {
  EXPECT_EQ(7.0, Value("1 + 2 * 3").number);
  EXPECT_EQ(1.0, Value("7 mod 2").number);
  EXPECT_EQ(3.5, Value("7 div 2").number);
  EXPECT_EQ(-4.0, Value("-(2 + 2)").number);
}

TEST_F(XPathEvalTest, ExistentialComparison) {
  // Some book has year < 1300 (Vita Nova).
  EXPECT_TRUE(Value("//year < 1300").boolean);
  // Node-set vs node-set: some title equals some title (trivially true);
  // and the false case with disjoint sets.
  EXPECT_TRUE(Value("//title = //title").boolean);
  EXPECT_FALSE(Value("//title = //year").boolean);
  EXPECT_TRUE(Value("//author = 'Dante'").boolean);
  EXPECT_TRUE(Value("//author != 'Dante'").boolean);  // existential !=
}

TEST_F(XPathEvalTest, BooleanConversions) {
  EXPECT_TRUE(Value("//book = true()").boolean);
  EXPECT_TRUE(Value("not(//missing)").boolean);
  EXPECT_FALSE(Value("boolean('')").boolean);
  EXPECT_TRUE(Value("boolean('x')").boolean);
  EXPECT_FALSE(Value("boolean(0)").boolean);
}

TEST_F(XPathEvalTest, Union) {
  EXPECT_EQ(8u, Value("//title | //author").nodes.size());
  EXPECT_EQ(4u, Value("//title | //title").nodes.size());
}

TEST_F(XPathEvalTest, NumberToString) {
  EXPECT_EQ("3", XPathNumberToString(3.0));
  EXPECT_EQ("3.5", XPathNumberToString(3.5));
  EXPECT_EQ("-7", XPathNumberToString(-7.0));
  EXPECT_EQ("NaN", XPathNumberToString(std::nan("")));
}

TEST_F(XPathEvalTest, ResultsInDocumentOrderWithoutDuplicates) {
  auto path = ParseXPath("//book/ancestor-or-self::node()/descendant::title");
  ASSERT_TRUE(path.ok());
  XPathEvaluator eval(doc_);
  auto nodes = eval.EvaluateFromRoot(*path);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(4u, nodes->size());
  for (size_t i = 1; i < nodes->size(); ++i) {
    EXPECT_LT((*nodes)[i - 1], (*nodes)[i]);
  }
}

TEST_F(XPathEvalTest, UnboundVariableFails) {
  auto path = ParseXPath("$x/a");
  ASSERT_TRUE(path.ok());
  XPathEvaluator eval(doc_);
  EXPECT_FALSE(eval.EvaluateFromRoot(*path).ok());
}

TEST_F(XPathEvalTest, VariableLookup) {
  auto path = ParseXPath("$books/title");
  ASSERT_TRUE(path.ok());
  XPathEvaluator plain(doc_);
  auto books = plain.EvaluateFromRoot(*ParseXPath("/library/book"));
  ASSERT_TRUE(books.ok());
  XPathEvaluator::Options options;
  XPathValue bound = XPathValue::NodeSet(*books);
  options.variable_lookup =
      [&bound](std::string_view name) -> Result<XPathValue> {
    if (name == "books") return bound;
    return NotFoundError("unbound");
  };
  XPathEvaluator eval(doc_, options);
  auto titles = eval.EvaluateFromRoot(*path);
  ASSERT_TRUE(titles.ok());
  EXPECT_EQ(3u, titles->size());
}

}  // namespace
}  // namespace xmlproj
