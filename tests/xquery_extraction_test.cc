#include "xquery/path_extraction.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "projection/pruner.h"
#include "common/strings.h"
#include "xml/parser.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace xmlproj {
namespace {

std::vector<std::string> Extract(std::string_view query_text) {
  auto query = ParseXQuery(query_text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  auto paths = ExtractPaths(**query);
  EXPECT_TRUE(paths.ok()) << paths.status().ToString();
  std::vector<std::string> out;
  for (const LPath& p : *paths) out.push_back(ToString(p));
  std::sort(out.begin(), out.end());
  return out;
}

bool ContainsPath(const std::vector<std::string>& paths,
                  std::string_view needle) {
  return std::find(paths.begin(), paths.end(), needle) != paths.end();
}

TEST(PathExtraction, SimplePathMaterialized) {
  // Line 8: a returned path gets /descendant-or-self::node().
  std::vector<std::string> paths = Extract("/site/people");
  ASSERT_EQ(1u, paths.size());
  EXPECT_EQ(
      "child::site/child::people/descendant-or-self::node()", paths[0]);
}

TEST(PathExtraction, ForBindingNotMaterialized) {
  // Line 16: E(q1, Γ, 0) — binding paths carry no dos; the returned
  // variable path does (line 6).
  std::vector<std::string> paths =
      Extract("for $p in /site/people/person return $p/name");
  EXPECT_TRUE(ContainsPath(paths, "child::site/child::people/child::person"))
      << ToString(LPath{});
  EXPECT_TRUE(ContainsPath(
      paths,
      "child::site/child::people/child::person/child::name/"
      "descendant-or-self::node()"));
}

TEST(PathExtraction, LetCountNeedsNoSubtree) {
  std::vector<std::string> paths = Extract(
      "let $k := /site/people/person return count($k)");
  // count() consumes nodes, not values: no dos anywhere.
  for (const std::string& p : paths) {
    EXPECT_EQ(std::string::npos, p.find("descendant-or-self")) << p;
  }
  EXPECT_TRUE(
      ContainsPath(paths, "child::site/child::people/child::person"));
}

TEST(PathExtraction, WhereComparisonKeepsComparedSubtree) {
  std::vector<std::string> paths = Extract(
      "for $a in /site/auctions/auction where $a/price > 10 "
      "return $a/loc/text()");
  // The §5 heuristic pushes the condition into the binding qualifier.
  bool qualified = false;
  for (const std::string& p : paths) {
    if (p.find("auction[") != std::string::npos &&
        p.find("child::price/descendant-or-self::node()") !=
            std::string::npos) {
      qualified = true;
    }
  }
  EXPECT_TRUE(qualified) << "paths:\n" << Join(paths, "\n");
}

TEST(PathExtraction, JoinConditionIsNotPushed) {
  std::vector<std::string> paths = Extract(
      "for $p in /site/people/person "
      "for $t in /site/auctions/auction "
      "where $t/seller = $p/id return $t/price/text()");
  // The where references two variables: both sides must be extracted as
  // global paths with their value subtrees.
  EXPECT_TRUE(ContainsPath(
      paths,
      "child::site/child::auctions/child::auction/child::seller/"
      "descendant-or-self::node()"));
  EXPECT_TRUE(ContainsPath(
      paths,
      "child::site/child::people/child::person/child::id/"
      "descendant-or-self::node()"));
}

TEST(PathExtraction, DescendantOrSelfIfHeuristic) {
  // The §5 motivating shape: for y in Q//node return if C(y) then q
  // else (): without the rewriting, the extracted binding path ends in
  // descendant-or-self::node() and pruning degenerates.
  std::vector<std::string> paths = Extract(
      "for $y in /site/regions/descendant-or-self::node() "
      "return if ($y/keyword) then $y/keyword else ()");
  bool qualified = false;
  for (const std::string& p : paths) {
    if (p.find("descendant-or-self::node()[") != std::string::npos &&
        p.find("child::keyword") != std::string::npos) {
      qualified = true;
    }
  }
  EXPECT_TRUE(qualified) << Join(paths, "\n");
}

TEST(PathExtraction, ConstructorAddsForPaths) {
  // Line 5: constructing output inside a for keeps the iteration paths.
  std::vector<std::string> paths = Extract(
      "for $i in /site/items/item return <mark/>");
  EXPECT_TRUE(
      ContainsPath(paths, "child::site/child::items/child::item"));
}

TEST(PathExtraction, AttributeJoinViaVariables) {
  std::vector<std::string> paths = Extract(
      "for $p in /site/people/person "
      "let $a := for $t in /site/auctions/auction "
      "          where $t/@seller = $p/@id return $t "
      "return count($a)");
  // Attribute operands need no dos (values are inline).
  EXPECT_TRUE(ContainsPath(
      paths, "child::site/child::auctions/child::auction/self::node()"));
  EXPECT_TRUE(ContainsPath(
      paths, "child::site/child::people/child::person/self::node()"));
}

TEST(PathExtraction, SomeQuantifierQualifiesBinding) {
  // `some` is existential: binding nodes that cannot satisfy the
  // condition are irrelevant, so the qualifier applies.
  std::vector<std::string> paths = Extract(
      "some $x in /site//node() satisfies $x/zipcode = '123'");
  bool qualified = false;
  for (const std::string& p : paths) {
    if (p.find("node()[") != std::string::npos &&
        p.find("child::zipcode") != std::string::npos) {
      qualified = true;
    }
  }
  EXPECT_TRUE(qualified) << Join(paths, "\n");
}

TEST(PathExtraction, EveryQuantifierDoesNotQualify) {
  // `every` is universal: failing nodes decide the answer and must stay.
  std::vector<std::string> paths = Extract(
      "every $x in /site/people/person satisfies $x/age > 10");
  EXPECT_TRUE(ContainsPath(
      paths, "child::site/child::people/child::person"))
      << Join(paths, "\n");
  for (const std::string& p : paths) {
    EXPECT_EQ(std::string::npos, p.find("person[")) << p;
  }
}

TEST(PathExtraction, FreeVariableFails) {
  auto query = ParseXQuery("$free/name");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(ExtractPaths(**query).ok());
}

TEST(PathExtraction, RelativeTopLevelPathFails) {
  auto query = ParseXQuery("people/person");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(ExtractPaths(**query).ok());
}

// --- End-to-end XQuery soundness ----------------------------------------

constexpr char kSiteDtd[] = R"(
  <!ELEMENT site (people, auctions)>
  <!ELEMENT people (person*)>
  <!ELEMENT person (name, age?, profile?)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT age (#PCDATA)>
  <!ELEMENT profile (interest*, education?)>
  <!ELEMENT interest (#PCDATA)>
  <!ELEMENT education (#PCDATA)>
  <!ELEMENT auctions (auction*)>
  <!ELEMENT auction (price, loc, note?)>
  <!ELEMENT price (#PCDATA)>
  <!ELEMENT loc (#PCDATA)>
  <!ELEMENT note (#PCDATA)>
  <!ATTLIST person id CDATA #REQUIRED>
  <!ATTLIST auction seller CDATA #REQUIRED>
)";

constexpr char kSiteXml[] = R"(
<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age>
      <profile><interest>art</interest><interest>go</interest>
      <education>phd</education></profile></person>
    <person id="p1"><name>Bob</name></person>
    <person id="p2"><name>Carol</name><age>41</age>
      <profile><education>bsc</education></profile></person>
  </people>
  <auctions>
    <auction seller="p0"><price>10</price><loc>rome</loc></auction>
    <auction seller="p1"><price>25</price><loc>kyoto</loc>
      <note>fragile</note></auction>
    <auction seller="p0"><price>40</price><loc>oslo</loc></auction>
  </auctions>
</site>
)";

class XQuerySoundnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(XQuerySoundnessTest, PrunedResultsMatch) {
  Dtd dtd = std::move(ParseDtd(kSiteDtd, "site")).value();
  Document doc = std::move(ParseXml(kSiteXml)).value();
  Interpretation interp = std::move(Validate(doc, dtd)).value();

  auto query = ParseXQuery(GetParam());
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  auto projector = InferProjectorForQuery(dtd, **query);
  ASSERT_TRUE(projector.ok()) << projector.status().ToString();
  auto pruned = PruneDocument(doc, interp, *projector);
  ASSERT_TRUE(pruned.ok());

  XQueryEvaluator eval_orig(doc);
  XQueryEvaluator eval_pruned(*pruned);
  auto res_orig = eval_orig.Evaluate(**query);
  ASSERT_TRUE(res_orig.ok()) << res_orig.status().ToString();
  auto res_pruned = eval_pruned.Evaluate(**query);
  ASSERT_TRUE(res_pruned.ok()) << res_pruned.status().ToString();
  EXPECT_EQ(eval_orig.Serialize(*res_orig),
            eval_pruned.Serialize(*res_pruned))
      << "query: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, XQuerySoundnessTest,
    ::testing::Values(
        "/site/people/person/name",
        "for $p in /site/people/person return $p/name/text()",
        "for $p in /site/people/person where $p/age > 35 return $p/name",
        "for $a in /site/auctions/auction where $a/price >= 25 "
        "return <hit loc=\"{$a/loc/text()}\"/>",
        "let $k := /site/people/person return count($k)",
        "for $p in /site/people/person "
        "let $a := for $t in /site/auctions/auction "
        "          where $t/@seller = $p/@id return $t "
        "return <s name=\"{$p/name/text()}\">{count($a)}</s>",
        "for $p in /site/people/person return "
        "if ($p/profile/education) then $p/name/text() else ()",
        "sum(/site/auctions/auction/price)",
        "for $a in /site/auctions/auction order by $a/price descending "
        "return $a/loc/text()",
        "for $y in /site/descendant-or-self::node() "
        "return if ($y/interest) then $y/interest/text() else ()",
        "for $p in /site/people/person return "
        "<person>{$p/name}{count($p/profile/interest)}</person>",
        "count(/site/people/person[age])",
        "for $a in /site/auctions/auction "
        "where contains($a/loc, 'o') return $a/price/text()",
        "for $p in /site/people/person where not($p/age) "
        "return $p/name/text()"));

TEST(XQueryProjection, SelectiveQueryPrunesSubstantially) {
  Dtd dtd = std::move(ParseDtd(kSiteDtd, "site")).value();
  Document doc = std::move(ParseXml(kSiteXml)).value();
  Interpretation interp = std::move(Validate(doc, dtd)).value();
  auto query =
      ParseXQuery("for $p in /site/people/person return $p/name/text()");
  ASSERT_TRUE(query.ok());
  auto projector = InferProjectorForQuery(dtd, **query);
  ASSERT_TRUE(projector.ok());
  // Auctions, ages and profiles must be gone.
  EXPECT_FALSE(projector->Contains(dtd.NameOfTag("auction")));
  EXPECT_FALSE(projector->Contains(dtd.NameOfTag("profile")));
  EXPECT_FALSE(projector->Contains(dtd.NameOfTag("age")));
  auto pruned = PruneDocument(doc, interp, *projector);
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->content_node_count(), doc.content_node_count() / 2);
}

}  // namespace
}  // namespace xmlproj
