// Tests for the raw top-level boundary scanner (xml/boundary.h).
//
// The scanner feeds the chunk planner, so two properties matter: when it
// claims splittable, the reported child spans must exactly tile the
// root's content (every byte between consecutive children is
// whitespace/comment/PI misc); and on anything it cannot prove safe it
// must say "not splittable" rather than guess — the sequential pass owns
// the diagnostics.

#include "xml/boundary.h"

#include <string>

#include <gtest/gtest.h>

#include "xmark/generator.h"

namespace xmlproj {
namespace {

TEST(BoundaryScanTest, SimpleChildren) {
  std::string xml = "<root><a>x</a><b attr=\"v\">y</b><c/></root>";
  TopLevelBoundaries b = ScanTopLevelBoundaries(xml);
  ASSERT_TRUE(b.splittable);
  EXPECT_EQ(b.root_tag, "root");
  EXPECT_EQ(b.root_start_begin, 0u);
  EXPECT_EQ(xml.substr(b.root_start_begin, b.root_start_end), "<root>");
  EXPECT_EQ(xml.substr(b.root_end_begin), "</root>");
  ASSERT_EQ(b.children.size(), 3u);
  EXPECT_EQ(xml.substr(b.children[0].begin,
                       b.children[0].end - b.children[0].begin),
            "<a>x</a>");
  EXPECT_EQ(b.children[0].tag, "a");
  EXPECT_EQ(xml.substr(b.children[1].begin,
                       b.children[1].end - b.children[1].begin),
            "<b attr=\"v\">y</b>");
  EXPECT_EQ(xml.substr(b.children[2].begin,
                       b.children[2].end - b.children[2].begin),
            "<c/>");
}

TEST(BoundaryScanTest, PrologMiscAndWhitespaceBetweenChildren) {
  std::string xml =
      "<?xml version=\"1.0\"?>\n"
      "<!-- prolog comment -->\n"
      "<!DOCTYPE root SYSTEM \"root.dtd\">\n"
      "<root>\n"
      "  <a/>\n"
      "  <!-- between -->\n"
      "  <?pi data?>\n"
      "  <b>t</b>\n"
      "</root>\n"
      "<!-- trailing misc -->\n";
  TopLevelBoundaries b = ScanTopLevelBoundaries(xml);
  ASSERT_TRUE(b.splittable);
  EXPECT_EQ(b.root_tag, "root");
  ASSERT_EQ(b.children.size(), 2u);
  EXPECT_EQ(b.children[0].tag, "a");
  EXPECT_EQ(b.children[1].tag, "b");
}

TEST(BoundaryScanTest, NestedSameNameElements) {
  std::string xml = "<r><x><x><x/></x></x><x/></r>";
  TopLevelBoundaries b = ScanTopLevelBoundaries(xml);
  ASSERT_TRUE(b.splittable);
  ASSERT_EQ(b.children.size(), 2u);
  EXPECT_EQ(xml.substr(b.children[0].begin,
                       b.children[0].end - b.children[0].begin),
            "<x><x><x/></x></x>");
}

TEST(BoundaryScanTest, QuotedAngleBracketsInAttributes) {
  std::string xml = "<r><a k=\"1>2\"><b/></a><c k='<'/></r>";
  TopLevelBoundaries b = ScanTopLevelBoundaries(xml);
  ASSERT_TRUE(b.splittable);
  ASSERT_EQ(b.children.size(), 2u);
  EXPECT_EQ(xml.substr(b.children[0].begin,
                       b.children[0].end - b.children[0].begin),
            "<a k=\"1>2\"><b/></a>");
}

TEST(BoundaryScanTest, EmptyRootHasNoChildren) {
  TopLevelBoundaries b = ScanTopLevelBoundaries("<root></root>");
  ASSERT_TRUE(b.splittable);
  EXPECT_TRUE(b.children.empty());
}

TEST(BoundaryScanTest, RootAttributesSpanRecorded) {
  std::string xml = "<root a=\"1\" b='2'><c/></root>";
  TopLevelBoundaries b = ScanTopLevelBoundaries(xml);
  ASSERT_TRUE(b.splittable);
  EXPECT_EQ(xml.substr(b.root_start_begin, b.root_start_end),
            "<root a=\"1\" b='2'>");
}

// --- conservative refusals -------------------------------------------------

TEST(BoundaryScanTest, RefusesTextDirectlyUnderRoot) {
  EXPECT_FALSE(ScanTopLevelBoundaries("<r>text<a/></r>").splittable);
  EXPECT_FALSE(ScanTopLevelBoundaries("<r><a/>mixed</r>").splittable);
  // Entity references are (potential) text too.
  EXPECT_FALSE(ScanTopLevelBoundaries("<r>&amp;<a/></r>").splittable);
}

TEST(BoundaryScanTest, RefusesTextOnlyRoot) {
  EXPECT_FALSE(ScanTopLevelBoundaries("<r>just text</r>").splittable);
}

TEST(BoundaryScanTest, RefusesCdataUnderRoot) {
  EXPECT_FALSE(
      ScanTopLevelBoundaries("<r><![CDATA[x]]><a/></r>").splittable);
}

TEST(BoundaryScanTest, RefusesSelfClosingRoot) {
  EXPECT_FALSE(ScanTopLevelBoundaries("<root/>").splittable);
}

TEST(BoundaryScanTest, RefusesMalformedInput) {
  EXPECT_FALSE(ScanTopLevelBoundaries("").splittable);
  EXPECT_FALSE(ScanTopLevelBoundaries("   ").splittable);
  EXPECT_FALSE(ScanTopLevelBoundaries("not xml").splittable);
  EXPECT_FALSE(ScanTopLevelBoundaries("<r><a></r>").splittable);   // bad nest
  EXPECT_FALSE(ScanTopLevelBoundaries("<r><a/>").splittable);      // no close
  EXPECT_FALSE(ScanTopLevelBoundaries("<r></q>").splittable);      // mismatch
  EXPECT_FALSE(ScanTopLevelBoundaries("<r k=\"unterminated></r>").splittable);
  EXPECT_FALSE(ScanTopLevelBoundaries("<r><a/></r><r2/>").splittable);
  EXPECT_FALSE(ScanTopLevelBoundaries("<r><a/></r>trailing").splittable);
}

// The real consumer: an XMark document must scan splittable with the
// <site> regions as children, and the spans must tile the root content
// (only misc between consecutive children).
TEST(BoundaryScanTest, XMarkDocumentTilesExactly) {
  XMarkOptions options;
  options.scale = 0.002;
  options.seed = 7;
  std::string xml = GenerateXMarkText(options);
  TopLevelBoundaries b = ScanTopLevelBoundaries(xml);
  ASSERT_TRUE(b.splittable);
  EXPECT_EQ(b.root_tag, "site");
  ASSERT_GT(b.children.size(), 2u);
  size_t cursor = b.root_start_end;
  for (const TopLevelChild& child : b.children) {
    ASSERT_LE(cursor, child.begin);
    // Gap before the child is pure misc: no markup-significant bytes
    // besides comments/PIs, which XMark does not emit between regions.
    for (size_t i = cursor; i < child.begin; ++i) {
      char c = xml[i];
      EXPECT_TRUE(c == ' ' || c == '\t' || c == '\n' || c == '\r')
          << "non-whitespace gap byte at " << i;
    }
    ASSERT_LT(child.begin, child.end);
    EXPECT_EQ(xml[child.begin], '<');
    EXPECT_EQ(xml[child.end - 1], '>');
    cursor = child.end;
  }
  ASSERT_LE(cursor, b.root_end_begin);
}

}  // namespace
}  // namespace xmlproj
