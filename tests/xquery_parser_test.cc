#include "xquery/parser.h"

#include <gtest/gtest.h>

namespace xmlproj {
namespace {

XQueryPtr MustParse(std::string_view text) {
  auto result = ParseXQuery(text);
  EXPECT_TRUE(result.ok()) << text << "\n" << result.status().ToString();
  return result.ok() ? std::move(*result) : MakeEmptyQuery();
}

TEST(XQueryParser, SimplePathQuery) {
  XQueryPtr q = MustParse("/site/people/person/name");
  EXPECT_EQ(XQueryKind::kScalar, q->kind);
  EXPECT_EQ(ExprKind::kPath, q->scalar->kind);
}

TEST(XQueryParser, ForReturn) {
  XQueryPtr q = MustParse("for $b in /site/people/person return $b/name");
  ASSERT_EQ(XQueryKind::kFor, q->kind);
  EXPECT_EQ("b", q->variable);
  EXPECT_EQ(XQueryKind::kScalar, q->binding->kind);
  EXPECT_EQ(XQueryKind::kScalar, q->body->kind);
  EXPECT_EQ(nullptr, q->where);
}

TEST(XQueryParser, ForWhereReturn) {
  XQueryPtr q = MustParse(
      "for $b in /site/open_auctions/open_auction "
      "where $b/reserve > 100 return $b/initial");
  ASSERT_EQ(XQueryKind::kFor, q->kind);
  ASSERT_NE(nullptr, q->where);
  EXPECT_EQ(XQueryKind::kScalar, q->where->kind);
}

TEST(XQueryParser, LetAndCount) {
  XQueryPtr q = MustParse(
      "let $k := /site/people/person return count($k)");
  ASSERT_EQ(XQueryKind::kLet, q->kind);
  EXPECT_EQ("k", q->variable);
  EXPECT_EQ(XQueryKind::kScalar, q->body->kind);
  EXPECT_EQ(ExprKind::kFunction, q->body->scalar->kind);
}

TEST(XQueryParser, NestedFlwr) {
  XQueryPtr q = MustParse(
      "for $p in /site/people/person "
      "let $a := for $t in /site/closed_auctions/closed_auction "
      "          where $t/buyer/@person = $p/@id return $t "
      "return count($a)");
  ASSERT_EQ(XQueryKind::kFor, q->kind);
  ASSERT_EQ(XQueryKind::kLet, q->body->kind);
  EXPECT_EQ(XQueryKind::kFor, q->body->binding->kind);
}

TEST(XQueryParser, MultipleForVariables) {
  XQueryPtr q = MustParse(
      "for $x in /a/b, $y in /a/c return $x = $y");
  ASSERT_EQ(XQueryKind::kFor, q->kind);
  EXPECT_EQ("x", q->variable);
  ASSERT_EQ(XQueryKind::kFor, q->body->kind);
  EXPECT_EQ("y", q->body->variable);
}

TEST(XQueryParser, OrderBy) {
  XQueryPtr q = MustParse(
      "for $b in /site/regions/africa/item "
      "order by $b/location descending return $b/name");
  ASSERT_EQ(XQueryKind::kFor, q->kind);
  ASSERT_NE(nullptr, q->order_key);
  EXPECT_TRUE(q->order_descending);
}

TEST(XQueryParser, IfThenElse) {
  XQueryPtr q = MustParse(
      "for $x in /a/b return if ($x/c) then $x/d else ()");
  ASSERT_EQ(XQueryKind::kFor, q->kind);
  ASSERT_EQ(XQueryKind::kIf, q->body->kind);
  EXPECT_EQ(XQueryKind::kEmpty, q->body->else_branch->kind);
}

TEST(XQueryParser, ElementConstructor) {
  XQueryPtr q = MustParse(
      "for $b in /x return <increase>{$b/bidder/increase/text()}</increase>");
  ASSERT_EQ(XQueryKind::kFor, q->kind);
  ASSERT_EQ(XQueryKind::kElement, q->body->kind);
  EXPECT_EQ("increase", q->body->tag);
  ASSERT_NE(nullptr, q->body->content);
}

TEST(XQueryParser, ConstructorWithAttributeTemplate) {
  XQueryPtr q = MustParse(
      R"(for $p in /x return <person name="{$p/name/text()}" kind="x"/>)");
  const XQueryExpr& elem = *q->body;
  ASSERT_EQ(XQueryKind::kElement, elem.kind);
  ASSERT_EQ(2u, elem.attributes.size());
  ASSERT_EQ(1u, elem.attributes[0].parts.size());
  EXPECT_NE(nullptr, elem.attributes[0].parts[0].expr);
  ASSERT_EQ(1u, elem.attributes[1].parts.size());
  EXPECT_EQ("x", elem.attributes[1].parts[0].text);
  EXPECT_EQ(nullptr, elem.content);
}

TEST(XQueryParser, ConstructorMixedContent) {
  XQueryPtr q = MustParse("<r>text <b>{/a/b}</b> more {1 + 2}</r>");
  ASSERT_EQ(XQueryKind::kElement, q->kind);
  ASSERT_NE(nullptr, q->content);
  ASSERT_EQ(XQueryKind::kSequence, q->content->kind);
  EXPECT_EQ(4u, q->content->items.size());
  EXPECT_EQ(XQueryKind::kText, q->content->items[0]->kind);
  EXPECT_EQ(XQueryKind::kElement, q->content->items[1]->kind);
}

TEST(XQueryParser, SequenceQuery) {
  XQueryPtr q = MustParse("/a/b, /a/c, count(/a/d)");
  ASSERT_EQ(XQueryKind::kSequence, q->kind);
  EXPECT_EQ(3u, q->items.size());
}

TEST(XQueryParser, EmptySequence) {
  XQueryPtr q = MustParse("()");
  EXPECT_EQ(XQueryKind::kEmpty, q->kind);
}

TEST(XQueryParser, ParenthesizedArithmeticIsScalar) {
  XQueryPtr q = MustParse("(1 + 2) * 3");
  ASSERT_EQ(XQueryKind::kScalar, q->kind);
  EXPECT_EQ(ExprKind::kBinary, q->scalar->kind);
}

TEST(XQueryParser, Comments) {
  XQueryPtr q = MustParse(
      "(: XMark Q1 :) for $b in /site/people/person (: loop :) "
      "return $b/name");
  EXPECT_EQ(XQueryKind::kFor, q->kind);
}

TEST(XQueryParser, WhereWithPredicatePath) {
  XQueryPtr q = MustParse(
      "for $t in /site/closed_auctions/closed_auction "
      "where $t/annotation/description/text/keyword return $t/date");
  ASSERT_EQ(XQueryKind::kFor, q->kind);
  ASSERT_NE(nullptr, q->where);
}

TEST(XQueryParser, LetWithWhereFoldsToIf) {
  XQueryPtr q = MustParse(
      "let $x := /a/b where count($x) > 2 return $x");
  ASSERT_EQ(XQueryKind::kLet, q->kind);
  EXPECT_EQ(XQueryKind::kIf, q->body->kind);
}

struct BadQuery {
  const char* name;
  const char* text;
};

class XQueryParserErrorTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(XQueryParserErrorTest, Rejects) {
  EXPECT_FALSE(ParseXQuery(GetParam().text).ok()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XQueryParserErrorTest,
    ::testing::Values(
        BadQuery{"MissingReturn", "for $x in /a/b $x"},
        BadQuery{"MissingIn", "for $x /a/b return $x"},
        BadQuery{"MissingDollar", "for x in /a/b return x"},
        BadQuery{"UnclosedConstructor", "<a>{/x}"},
        BadQuery{"MismatchedClose", "<a>{/x}</b>"},
        BadQuery{"UnclosedBrace", "<a>{/x</a>"},
        BadQuery{"LetWithoutAssign", "let $x /a return $x"},
        BadQuery{"TrailingGarbage", "/a/b extra"},
        BadQuery{"IfWithoutElse", "if (/a) then /b"},
        BadQuery{"OrderWithoutBy", "for $x in /a order $x return $x"}),
    [](const ::testing::TestParamInfo<BadQuery>& info) {
      return info.param.name;
    });

TEST(XQueryParser, ToStringRoundTrips) {
  XQueryPtr q = MustParse(
      "for $b in /site/open_auctions/open_auction "
      "where $b/reserve > 100 "
      "return <auction id=\"{$b/seller/@person}\">{$b/initial}</auction>");
  std::string text = ToString(*q);
  // The unparsed form must itself parse.
  auto again = ParseXQuery(text);
  ASSERT_TRUE(again.ok()) << text << "\n" << again.status().ToString();
  EXPECT_EQ(text, ToString(**again));
}

}  // namespace
}  // namespace xmlproj
