// Tests for the observability subsystem (obs/): counter/gauge/histogram
// semantics incl. merge, concurrent increments, registry behavior, trace
// serialization, and exporter golden output.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "projection/pipeline.h"
#include "xmark/corpus.h"
#include "xmark/xmark_dtd.h"

namespace xmlproj {
namespace {

TEST(Counter, StartsAtZeroAndAdds) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Counter, MergeAdds) {
  Counter a;
  Counter b;
  a.Increment(10);
  b.Increment(32);
  a.MergeFrom(b);
  EXPECT_EQ(a.Value(), 42u);
  EXPECT_EQ(b.Value(), 32u);  // source unchanged
}

TEST(Gauge, SetAddSubAndMax) {
  Gauge g;
  g.Set(5);
  g.Add(10);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 12);
  g.SetMax(7);  // below current: no change
  EXPECT_EQ(g.Value(), 12);
  g.SetMax(100);
  EXPECT_EQ(g.Value(), 100);
}

TEST(Gauge, MergeTakesMax) {
  Gauge a;
  Gauge b;
  a.Set(10);
  b.Set(3);
  a.MergeFrom(b);
  EXPECT_EQ(a.Value(), 10);
  b.Set(99);
  a.MergeFrom(b);
  EXPECT_EQ(a.Value(), 99);
}

TEST(Histogram, BucketBoundariesAreFixedPowersOfTwo) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);  // empty: min reported as 0
  h.Record(10);
  h.Record(1000);
  h.Record(3);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 1013u);
  EXPECT_EQ(h.Min(), 3u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1013.0 / 3.0);
}

TEST(Histogram, ApproxPercentileIsBucketBoundClampedToMax) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(10);    // bucket le=15
  for (int i = 0; i < 10; ++i) h.Record(5000);  // bucket le=8191, max=5000
  EXPECT_EQ(h.ApproxPercentile(0.5), 15u);
  EXPECT_EQ(h.ApproxPercentile(0.9), 15u);
  // Top percentile lands in the wide bucket; clamped to observed max.
  EXPECT_EQ(h.ApproxPercentile(0.99), 5000u);
  EXPECT_EQ(h.ApproxPercentile(1.0), 5000u);
}

TEST(Histogram, MergeAddsBucketwiseAndFoldsMinMax) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1);
  b.Record(100000);
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 4u);
  EXPECT_EQ(a.Sum(), 100031u);
  EXPECT_EQ(a.Min(), 1u);
  EXPECT_EQ(a.Max(), 100000u);
  EXPECT_EQ(a.BucketCount(Histogram::BucketIndex(10)), 1u);
  EXPECT_EQ(a.BucketCount(Histogram::BucketIndex(1)), 1u);
}

TEST(Histogram, MergeFromEmptyLeavesMinMaxIntact) {
  Histogram a;
  Histogram empty;
  a.Record(7);
  a.MergeFrom(empty);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_EQ(a.Min(), 7u);
  EXPECT_EQ(a.Max(), 7u);
}

TEST(Histogram, ConcurrentRecordsAreLossless) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  EXPECT_EQ(registry.GetCounter("c"), c);
  EXPECT_NE(registry.GetCounter("c2"), c);
  Gauge* g = registry.GetGauge("g");
  EXPECT_EQ(registry.GetGauge("g"), g);
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(registry.GetHistogram("h"), h);
  // Reusing a name across kinds is a registration bug; see the
  // KindMismatch tests below.
}

// A name belongs to one kind. Release builds turn the offending lookup
// into a disabled site (nullptr) and count it; debug builds assert.
#ifdef NDEBUG
TEST(MetricsRegistry, KindMismatchReturnsNullAndCounts) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("same"), nullptr);
  EXPECT_EQ(registry.GetGauge("same"), nullptr);
  EXPECT_EQ(registry.GetHistogram("same"), nullptr);
  EXPECT_GE(registry.kind_conflicts(), 2u);
  // The family's original kind keeps working.
  EXPECT_NE(registry.GetCounter("same"), nullptr);
}
#elif defined(GTEST_HAS_DEATH_TEST) && GTEST_HAS_DEATH_TEST
TEST(MetricsRegistryDeathTest, KindMismatchAssertsInDebugBuilds) {
  EXPECT_DEATH(
      {
        MetricsRegistry registry;
        registry.GetCounter("same");
        registry.GetGauge("same");
      },
      "");
}
#endif

TEST(MetricsRegistry, LabeledSeriesAreDistinctAndCanonical) {
  MetricsRegistry registry;
  Counter* unlabeled = registry.GetCounter("c");
  Counter* q0 = registry.GetCounter("c", {{"query_id", "0"}});
  Counter* q1 = registry.GetCounter("c", {{"query_id", "1"}});
  ASSERT_NE(q0, nullptr);
  EXPECT_NE(q0, unlabeled);
  EXPECT_NE(q0, q1);
  // Same label set -> same series; key order does not matter.
  EXPECT_EQ(registry.GetCounter("c", {{"query_id", "0"}}), q0);
  Counter* ab = registry.GetCounter("c", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(registry.GetCounter("c", {{"b", "2"}, {"a", "1"}}), ab);
}

TEST(MetricsRegistry, EncodeMetricLabelsSortsAndEscapes) {
  EXPECT_EQ(EncodeMetricLabels({{"b", "2"}, {"a", "1"}}),
            "a=\"1\",b=\"2\"");
  EXPECT_EQ(EncodeMetricLabels({{"q", "a\"b\\c\nd"}}),
            "q=\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(EncodeMetricLabels({}), "");
}

TEST(MetricsRegistry, LabelCardinalityBoundCollapsesToOther) {
  MetricsRegistry registry;
  const size_t kOverflowing = MetricsRegistry::kMaxLabeledSeries + 5;
  for (size_t i = 0; i < kOverflowing; ++i) {
    Counter* c = registry.GetCounter("c", {{"id", std::to_string(i)}});
    ASSERT_NE(c, nullptr) << "id " << i;
    c->Increment();
  }
  size_t labeled = 0;
  uint64_t other_value = 0;
  registry.ForEachCounter([&](const std::string& /*name*/,
                              const std::string& labels, const Counter& c) {
    if (labels.empty()) return;
    ++labeled;
    if (labels == "id=\"other\"") other_value = c.Value();
  });
  // kMaxLabeledSeries distinct series plus the one overflow series.
  EXPECT_EQ(labeled, MetricsRegistry::kMaxLabeledSeries + 1);
  EXPECT_EQ(other_value, 5u);
  // The overflow series is shared by all further novel label sets.
  EXPECT_EQ(registry.GetCounter("c", {{"id", "zzz"}}),
            registry.GetCounter("c", {{"id", "other"}}));
}

TEST(MetricsRegistry, MergePreservesLabeledSeries) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("c", {{"q", "0"}})->Increment(1);
  b.GetCounter("c", {{"q", "0"}})->Increment(2);
  b.GetCounter("c", {{"q", "1"}})->Increment(7);
  b.GetHistogram("h", {{"q", "0"}})->Record(16);
  b.SetHelp("c", "a counter");
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("c", {{"q", "0"}})->Value(), 3u);
  EXPECT_EQ(a.GetCounter("c", {{"q", "1"}})->Value(), 7u);
  EXPECT_EQ(a.GetHistogram("h", {{"q", "0"}})->Count(), 1u);
  EXPECT_EQ(a.HelpTexts()["c"], "a counter");
}

TEST(MetricsRegistry, MergeFoldsAllFamilies) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("c")->Increment(1);
  b.GetCounter("c")->Increment(2);
  b.GetCounter("only_b")->Increment(5);
  a.GetGauge("peak")->Set(10);
  b.GetGauge("peak")->Set(99);
  a.GetHistogram("h")->Record(8);
  b.GetHistogram("h")->Record(16);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("c")->Value(), 3u);
  EXPECT_EQ(a.GetCounter("only_b")->Value(), 5u);
  EXPECT_EQ(a.GetGauge("peak")->Value(), 99);
  EXPECT_EQ(a.GetHistogram("h")->Count(), 2u);
  // Self-merge is a documented no-op, not a deadlock.
  a.MergeFrom(a);
  EXPECT_EQ(a.GetCounter("c")->Value(), 3u);
}

TEST(ScopedLatencyTimer, RecordsOneSampleAndNullIsNoop) {
  Histogram h;
  { ScopedLatencyTimer timer(&h); }
  EXPECT_EQ(h.Count(), 1u);
  { ScopedLatencyTimer timer(nullptr); }  // must not crash
}

// --- Exporters ---------------------------------------------------------------

TEST(Export, MetricsJsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("xmlproj_tasks_total")->Increment(3);
  registry.GetGauge("xmlproj_queue_depth")->Set(-2);
  Histogram* h = registry.GetHistogram("xmlproj_latency_ns");
  h->Record(0);
  h->Record(5);
  h->Record(5);
  std::string json;
  AppendMetricsJson(registry, &json);
  const char* expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"xmlproj_tasks_total\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"xmlproj_queue_depth\": -2\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"xmlproj_latency_ns\": {\"count\":3,\"sum\":10,\"min\":0,"
      "\"max\":5,\"mean\":3.333,\"p50\":5,\"p90\":5,\"p99\":5,"
      "\"buckets\":[{\"le\":0,\"count\":1},{\"le\":7,\"count\":2}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(Export, EmptyRegistryJsonIsValid) {
  MetricsRegistry registry;
  std::string json;
  AppendMetricsJson(registry, &json);
  EXPECT_EQ(json,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

TEST(Export, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("xmlproj_tasks_total")->Increment(7);
  registry.GetGauge("xmlproj_threads")->Set(4);
  Histogram* h = registry.GetHistogram("xmlproj_wait_ns");
  h->Record(1);
  h->Record(3);
  h->Record(3);
  std::string text;
  AppendPrometheusText(registry, &text);
  const char* expected =
      "# TYPE xmlproj_tasks_total counter\n"
      "xmlproj_tasks_total 7\n"
      "# TYPE xmlproj_threads gauge\n"
      "xmlproj_threads 4\n"
      "# TYPE xmlproj_wait_ns histogram\n"
      "xmlproj_wait_ns_bucket{le=\"1\"} 1\n"
      "xmlproj_wait_ns_bucket{le=\"3\"} 3\n"
      "xmlproj_wait_ns_bucket{le=\"+Inf\"} 3\n"
      "xmlproj_wait_ns_sum 7\n"
      "xmlproj_wait_ns_count 3\n";
  EXPECT_EQ(text, expected);
}

TEST(Export, PrometheusTextLabeledSeriesAndHelp) {
  MetricsRegistry registry;
  registry.SetHelp("xmlproj_tasks_total", "Tasks completed");
  registry.GetCounter("xmlproj_tasks_total")->Increment(10);
  registry.GetCounter("xmlproj_tasks_total", {{"query_id", "0"}})
      ->Increment(4);
  registry.GetCounter("xmlproj_tasks_total", {{"query_id", "1"}})
      ->Increment(6);
  std::string text;
  AppendPrometheusText(registry, &text);
  const char* expected =
      "# HELP xmlproj_tasks_total Tasks completed\n"
      "# TYPE xmlproj_tasks_total counter\n"
      "xmlproj_tasks_total 10\n"
      "xmlproj_tasks_total{query_id=\"0\"} 4\n"
      "xmlproj_tasks_total{query_id=\"1\"} 6\n";
  EXPECT_EQ(text, expected);
}

TEST(Export, PrometheusTypeLineOncePerFamily) {
  MetricsRegistry registry;
  registry.GetCounter("c", {{"q", "0"}})->Increment();
  registry.GetCounter("c", {{"q", "1"}})->Increment();
  registry.GetCounter("c")->Increment();
  std::string text;
  AppendPrometheusText(registry, &text);
  size_t count = 0;
  for (size_t at = text.find("# TYPE c counter"); at != std::string::npos;
       at = text.find("# TYPE c counter", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << text;
}

TEST(Export, PrometheusEscapesLabelValuesAndHelp) {
  MetricsRegistry registry;
  registry.SetHelp("c", "line1\nline2 back\\slash");
  registry.GetCounter("c", {{"q", "a\"b\\c\nd"}})->Increment();
  std::string text;
  AppendPrometheusText(registry, &text);
  // HELP escapes backslash and newline (not quotes); label values escape
  // backslash, quote, and newline.
  EXPECT_NE(text.find("# HELP c line1\\nline2 back\\\\slash\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("c{q=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos)
      << text;
}

TEST(Export, PrometheusLabeledHistogramBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("xmlproj_wait_ns", {{"q", "0"}});
  h->Record(1);
  h->Record(3);
  std::string text;
  AppendPrometheusText(registry, &text);
  const char* expected =
      "# TYPE xmlproj_wait_ns histogram\n"
      "xmlproj_wait_ns_bucket{q=\"0\",le=\"1\"} 1\n"
      "xmlproj_wait_ns_bucket{q=\"0\",le=\"3\"} 2\n"
      "xmlproj_wait_ns_bucket{q=\"0\",le=\"+Inf\"} 2\n"
      "xmlproj_wait_ns_sum{q=\"0\"} 4\n"
      "xmlproj_wait_ns_count{q=\"0\"} 2\n";
  EXPECT_EQ(text, expected);
}

TEST(Export, MetricsJsonLabeledSeriesKeys) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(1);
  registry.GetCounter("c", {{"q", "0"}})->Increment(2);
  std::string json;
  AppendMetricsJson(registry, &json);
  EXPECT_NE(json.find("\"c\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c{q=\\\"0\\\"}\": 2"), std::string::npos) << json;
}

TEST(Export, PrometheusNameSanitization) {
  MetricsRegistry registry;
  registry.GetCounter("weird.name-1")->Increment();
  std::string text;
  AppendPrometheusText(registry, &text);
  EXPECT_NE(text.find("weird_name_1 1\n"), std::string::npos) << text;
}

TEST(Export, WriteTextFileRoundTripsAndFailsOnBadPath) {
  std::string path = ::testing::TempDir() + "/obs_export_test.txt";
  ASSERT_TRUE(WriteTextFile(path, "hello\n"));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "hello\n");
  EXPECT_FALSE(WriteTextFile("/nonexistent_dir_xyz/file", "x"));
}

// --- Trace -------------------------------------------------------------------

TEST(Trace, EventsSerializeToChromeFormat) {
  TraceCollector trace;
  uint64_t t0 = MonotonicNowNs();
  trace.AddCompleteEvent("parse", "stage", t0, 1500,
                         {{"task", 7}});
  trace.AddCounterEvent("queue depth", t0, 3);
  EXPECT_EQ(trace.event_count(), 2u);
  std::string json;
  trace.AppendChromeTraceJson(&json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"task\":7}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":3}"), std::string::npos);
  // Braces/brackets balance: the output parses as JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, ThreadsGetStableSmallTids) {
  TraceCollector trace;
  trace.AddCompleteEvent("main1", "t", MonotonicNowNs(), 1);
  trace.AddCompleteEvent("main2", "t", MonotonicNowNs(), 1);
  std::thread other([&trace] {
    trace.AddCompleteEvent("worker", "t", MonotonicNowNs(), 1);
  });
  other.join();
  std::string json;
  trace.AppendChromeTraceJson(&json);
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(Trace, EscapesJsonSignificantCharactersInNames) {
  TraceCollector trace;
  trace.AddCompleteEvent("we\"ird\\name", "c", MonotonicNowNs(), 1);
  std::string json;
  trace.AppendChromeTraceJson(&json);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(Trace, DefaultSamplingKeepsEveryIndex) {
  TraceCollector trace;
  EXPECT_EQ(trace.options().sample_every_n, 1u);
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(trace.ShouldSample(i)) << "index " << i;
  }
}

TEST(Trace, SampleEveryNKeepsMultiplesOfN) {
  TraceOptions options;
  options.sample_every_n = 3;
  TraceCollector trace(options);
  for (uint64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(trace.ShouldSample(i), i % 3 == 0) << "index " << i;
  }
}

TEST(Trace, SampleEveryZeroBehavesLikeOne) {
  TraceOptions options;
  options.sample_every_n = 0;  // degenerate config: keep everything
  TraceCollector trace(options);
  EXPECT_TRUE(trace.ShouldSample(0));
  EXPECT_TRUE(trace.ShouldSample(7));
}

// End-to-end: a sampled collector attached to the pipeline records stage
// spans for every Nth task only, while metrics (unsampled) still cover
// all of them.
TEST(Trace, PipelineRecordsSpansForSampledTasksOnly) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 4;
  corpus_options.scale = 0.0005;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto dtd = LoadXMarkDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  auto projector = WorkloadProjector(*dtd, XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok()) << projector.status().ToString();

  TraceOptions trace_options;
  trace_options.sample_every_n = 2;
  TraceCollector sampled(trace_options);
  MetricsRegistry metrics;
  PipelineOptions options;
  options.num_threads = 1;
  options.trace = &sampled;
  options.metrics = &metrics;
  auto run = PruneCorpus(corpus, *dtd, *projector, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::string json;
  sampled.AppendChromeTraceJson(&json);
  // Tasks 0 and 2 are sampled; 1 and 3 are not. Each sampled task emits
  // one "prune" stage span.
  size_t prune_spans = 0;
  for (size_t at = json.find("\"name\":\"prune\""); at != std::string::npos;
       at = json.find("\"name\":\"prune\"", at + 1)) {
    ++prune_spans;
  }
  EXPECT_EQ(prune_spans, 2u);
  EXPECT_NE(json.find("\"task\":0"), std::string::npos);
  EXPECT_NE(json.find("\"task\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"task\":1"), std::string::npos);
  EXPECT_EQ(json.find("\"task\":3"), std::string::npos);
  // The stage histograms are not sampled: all four tasks land in them.
  EXPECT_EQ(metrics.GetHistogram("xmlproj_stage_prune_ns")->Count(), 4u);
}

TEST(Trace, AppendRecentSpansJsonKeepsTailAndCountsDropped) {
  TraceCollector trace;
  uint64_t t0 = MonotonicNowNs();
  trace.AddCompleteEvent("first", "stage", t0, 100);
  trace.AddCompleteEvent("second", "stage", t0, 100);
  trace.AddCompleteEvent("third", "stage", t0, 100);
  std::string json;
  trace.AppendRecentSpansJson(2, &json);
  EXPECT_NE(json.find("\"dropped\":1"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"name\":\"first\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"second\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"third\""), std::string::npos) << json;
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, TimestampsRebaseOntoCollectorEpoch) {
  TraceCollector trace;
  // A timestamp before the collector existed clamps to 0, not underflow.
  trace.AddCompleteEvent("early", "c", 0, 1);
  std::string json;
  trace.AppendChromeTraceJson(&json);
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
}

TEST(BuildInfo, RegistersTheStandardInfoGauge) {
  EXPECT_FALSE(XmlprojVersion().empty());
  EXPECT_FALSE(XmlprojCompiler().empty());

  MetricsRegistry registry;
  RegisterBuildInfo(&registry);
  MetricLabels labels = {{"compiler", std::string(XmlprojCompiler())},
                         {"version", std::string(XmlprojVersion())}};
  Gauge* info = registry.GetGauge("xmlproj_build_info", labels);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->Value(), 1);

  RegisterBuildInfo(nullptr);  // null-safe no-op
}

}  // namespace
}  // namespace xmlproj
