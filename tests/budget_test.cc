// Resource-budget accounting tests (PipelineOptions::budget): the byte
// cap trips with bounded overshoot, an inactive budget is free and
// transparent, and kIsolate runs produce byte-identical output for the
// surviving documents compared to a sequential run without the failing
// ones.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "projection/pipeline.h"
#include "random_xml.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

using testing_random::DocGenerator;
using testing_random::RandomDtd;

std::string Serialize(const Document& doc) { return SerializeDocument(doc); }

// Property: across randomized grammars and documents, a byte cap set
// below the document's metered footprint yields kResourceExhausted with
// the metered peak within 10% of the cap — the guard checks at SAX-event
// granularity, so the overshoot is bounded by one event's output plus one
// stack frame, far under 10% of any non-toy cap.
TEST(BudgetTest, ResourceExhaustedFiresWithinTenPercentOfCap) {
  int checked = 0;
  for (uint64_t seed = 1; seed <= 300 && checked < 8; ++seed) {
    int name_count = 0;
    Dtd dtd = RandomDtd(seed, &name_count);
    DocGenerator gen(dtd, seed * 31 + 7);
    auto doc = gen.Generate();
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    std::vector<std::string> corpus = {Serialize(*doc)};
    if (corpus[0].size() < 3000) continue;  // need a non-toy cap
    NameSet projector = dtd.AllNames();

    PipelineOptions options;
    options.num_threads = 1;
    options.policy = ErrorPolicy::kIsolate;
    options.budget.max_bytes = corpus[0].size() / 2;
    auto run = PruneCorpus(corpus, dtd, projector, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run->failures.size(), 1u) << "seed " << seed;
    const TaskFailure& failure = run->failures[0];
    EXPECT_EQ(failure.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(failure.stage, "budget");
    EXPECT_GT(failure.peak_bytes, options.budget.max_bytes) << "seed " << seed;
    EXPECT_LE(failure.peak_bytes,
              options.budget.max_bytes + options.budget.max_bytes / 10)
        << "seed " << seed;
    EXPECT_TRUE(run->results[0].output.empty());
    ++checked;
  }
  EXPECT_GE(checked, 5) << "generator produced too few large documents";
}

// A cap above the metered footprint must be invisible: same bytes as the
// unbudgeted pass, no failures, despite the guard filter being in place.
TEST(BudgetTest, GenerousBudgetIsTransparent) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    int name_count = 0;
    Dtd dtd = RandomDtd(seed, &name_count);
    std::vector<std::string> corpus;
    for (uint64_t d = 0; d < 4; ++d) {
      DocGenerator gen(dtd, seed * 100 + d);
      auto doc = gen.Generate();
      ASSERT_TRUE(doc.ok()) << doc.status().ToString();
      corpus.push_back(Serialize(*doc));
    }
    NameSet projector = dtd.AllNames();

    PipelineOptions sequential;
    sequential.num_threads = 1;
    auto unbudgeted = PruneCorpus(corpus, dtd, projector, sequential);
    ASSERT_TRUE(unbudgeted.ok()) << unbudgeted.status().ToString();

    PipelineOptions options;
    options.num_threads = 2;
    options.policy = ErrorPolicy::kIsolate;
    size_t largest = 0;
    for (const std::string& text : corpus) {
      largest = std::max(largest, text.size());
    }
    options.budget.max_bytes = largest * 4 + (1 << 16);
    options.budget.deadline_ms = 60000;
    auto budgeted = PruneCorpus(corpus, dtd, projector, options);
    ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
    EXPECT_TRUE(budgeted->failures.empty());
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(budgeted->results[i].output, unbudgeted->results[i].output)
          << "seed " << seed << " document " << i;
    }
  }
}

// An all-zero budget keeps the guard out of the pass entirely (no filter,
// no clock reads); outputs are the reference bytes.
TEST(BudgetTest, ZeroBudgetMeansUnlimited) {
  int name_count = 0;
  Dtd dtd = RandomDtd(3, &name_count);
  DocGenerator gen(dtd, 77);
  auto doc = gen.Generate();
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  std::vector<std::string> corpus = {Serialize(*doc)};
  NameSet projector = dtd.AllNames();

  PipelineOptions options;
  options.num_threads = 1;
  EXPECT_FALSE(options.budget.active());
  auto reference = PruneCorpus(corpus, dtd, projector, options);
  ASSERT_TRUE(reference.ok());

  options.policy = ErrorPolicy::kIsolate;  // still no budget
  auto run = PruneCorpus(corpus, dtd, projector, options);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->failures.empty());
  EXPECT_EQ(run->results[0].output, reference->results[0].output);
}

// The satellite property: a kIsolate run over a corpus with some
// documents doomed to fail produces byte-identical output for the
// surviving documents compared to a sequential run over the corpus with
// the failing documents removed.
TEST(BudgetTest, IsolateSurvivorsMatchSequentialRunWithoutTheFailures) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    int name_count = 0;
    Dtd dtd = RandomDtd(seed, &name_count);
    std::vector<std::string> corpus;
    for (uint64_t d = 0; d < 10; ++d) {
      DocGenerator gen(dtd, seed * 1000 + d);
      auto doc = gen.Generate();
      ASSERT_TRUE(doc.ok()) << doc.status().ToString();
      corpus.push_back(Serialize(*doc));
    }
    // Doom every third document: truncation makes the parse fail.
    std::vector<bool> doomed(corpus.size(), false);
    for (size_t i = 0; i < corpus.size(); i += 3) {
      corpus[i].resize(corpus[i].size() / 2);
      doomed[i] = true;
    }
    NameSet projector = dtd.AllNames();

    PipelineOptions isolate;
    isolate.num_threads = 4;
    isolate.policy = ErrorPolicy::kIsolate;
    auto run = PruneCorpus(corpus, dtd, projector, isolate);
    ASSERT_TRUE(run.ok()) << run.status().ToString();

    std::vector<bool> reported(corpus.size(), false);
    for (const TaskFailure& f : run->failures) reported[f.task] = true;
    // Truncation *can* leave a well-formed prefix; every doomed document
    // that did fail must be reported, and no healthy one may be.
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (!doomed[i]) {
        EXPECT_FALSE(reported[i]) << "seed " << seed << " document " << i;
      }
    }

    // Sequential run over the survivors only.
    std::vector<std::string> survivors;
    std::vector<size_t> survivor_index;
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (reported[i]) continue;
      survivors.push_back(corpus[i]);
      survivor_index.push_back(i);
    }
    PipelineOptions sequential_options;
    sequential_options.num_threads = 1;
    auto sequential =
        PruneCorpus(survivors, dtd, projector, sequential_options);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    for (size_t s = 0; s < survivors.size(); ++s) {
      EXPECT_EQ(run->results[survivor_index[s]].output,
                sequential->results[s].output)
          << "seed " << seed << " survivor " << survivor_index[s];
    }
    EXPECT_EQ(run->summary.tasks, survivors.size());
    EXPECT_EQ(run->summary.output_bytes, sequential->summary.output_bytes);
  }
}

// Budgets are per task: one oversized document trips its own cap without
// taking down its siblings (the per-task MemoryMeter starts fresh).
TEST(BudgetTest, BudgetsAreScopedPerTask) {
  // Find one grammar that generates both a big and a small document (the
  // two tasks must share the DTD and projector).
  std::optional<Dtd> chosen;
  std::string big;
  std::string small;
  for (uint64_t seed = 1; seed <= 40 && !chosen.has_value(); ++seed) {
    int name_count = 0;
    Dtd dtd = RandomDtd(seed, &name_count);
    std::string candidate_big;
    std::string candidate_small;
    for (uint64_t d = 0; d < 32; ++d) {
      DocGenerator gen(dtd, seed * 500 + d);
      auto doc = gen.Generate();
      ASSERT_TRUE(doc.ok());
      std::string text = Serialize(*doc);
      if (text.size() >= 3072 && candidate_big.empty()) {
        candidate_big = std::move(text);
      } else if (text.size() < 1024 && candidate_small.empty()) {
        candidate_small = std::move(text);
      }
      if (!candidate_big.empty() && !candidate_small.empty()) {
        chosen.emplace(std::move(dtd));
        big = std::move(candidate_big);
        small = std::move(candidate_small);
        break;
      }
    }
  }
  ASSERT_TRUE(chosen.has_value()) << "no grammar produced both sizes";
  const Dtd& dtd = *chosen;
  std::vector<std::string> corpus = {small, big, small, big, small};
  NameSet projector = dtd.AllNames();

  PipelineOptions options;
  options.num_threads = 2;
  options.policy = ErrorPolicy::kIsolate;
  options.budget.max_bytes = 2048;  // small fits, big cannot
  auto run = PruneCorpus(corpus, dtd, projector, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), 2u);
  EXPECT_EQ(run->failures[0].task, 1u);
  EXPECT_EQ(run->failures[1].task, 3u);
  for (size_t i : {size_t{0}, size_t{2}, size_t{4}}) {
    EXPECT_FALSE(run->results[i].output.empty()) << "document " << i;
  }
}

}  // namespace
}  // namespace xmlproj
