// DTD-parser fuzz and property suite, mirroring xml_fuzz_test.cc for the
// declaration language: randomly corrupted DTD text must produce Status
// errors — never crashes, hangs, or inconsistent grammars — and valid
// grammars must survive a render → reparse round trip that preserves the
// documents they accept.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "random_xml.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

using testing_random::DocGenerator;
using testing_random::RandomDtd;

// Renders a grammar back to DTD declaration text. Only the constructs
// RandomDtd emits are needed (Name/Seq/Choice/Star/Plus/Opt over element
// and String names); #PCDATA placement follows DTD syntax: a lone
// PCDATA leaf renders as (#PCDATA), mixed content as (#PCDATA | a | b)*.
std::string RenderRegex(const Dtd& dtd, const ContentModel& model,
                        int32_t index) {
  const RegexNode& node = model.node(index);
  switch (node.kind) {
    case RegexKind::kEpsilon:
      return "";
    case RegexKind::kAny:
      return "ANY";
    case RegexKind::kName:
      if (dtd.IsStringName(node.name)) return "#PCDATA";
      return dtd.production(node.name).tag;
    case RegexKind::kSeq: {
      std::string out = "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += RenderRegex(dtd, model, node.children[i]);
      }
      return out + ")";
    }
    case RegexKind::kChoice: {
      std::string out = "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += " | ";
        out += RenderRegex(dtd, model, node.children[i]);
      }
      return out + ")";
    }
    case RegexKind::kStar:
      return "(" + RenderRegex(dtd, model, node.children[0]) + ")*";
    case RegexKind::kPlus:
      return "(" + RenderRegex(dtd, model, node.children[0]) + ")+";
    case RegexKind::kOpt:
      return "(" + RenderRegex(dtd, model, node.children[0]) + ")?";
  }
  return "";
}

std::string RenderDtd(const Dtd& dtd) {
  std::string out;
  for (NameId id = 0; id < static_cast<NameId>(dtd.name_count()); ++id) {
    const Production& p = dtd.production(id);
    if (p.is_string || p.is_document) continue;
    out += "<!ELEMENT " + p.tag + " ";
    if (p.content.empty_model()) {
      out += "EMPTY";
    } else {
      const RegexNode& root = p.content.node(p.content.root());
      // A lone PCDATA star leaf is written (#PCDATA); mixed content keeps
      // its trailing star.
      if (root.kind == RegexKind::kStar &&
          p.content.node(root.children[0]).kind == RegexKind::kName &&
          dtd.IsStringName(p.content.node(root.children[0]).name)) {
        out += "(#PCDATA)";
      } else if (root.kind == RegexKind::kStar &&
                 p.content.node(root.children[0]).kind == RegexKind::kChoice) {
        out += RenderRegex(dtd, p.content, root.children[0]) + "*";
      } else {
        std::string body = RenderRegex(dtd, p.content, p.content.root());
        if (body.empty() || body.front() != '(') body = "(" + body + ")";
        out += body;
      }
    }
    out += ">\n";
    for (const AttributeDecl& a : p.attributes) {
      out += "<!ATTLIST " + p.tag + " " + a.name + " CDATA " +
             (a.required ? "#REQUIRED" : "#IMPLIED") + ">\n";
    }
  }
  return out;
}

// Same mutation operators as xml_fuzz_test.cc.
std::string Mutate(const std::string& input, Rng* rng) {
  std::string out = input;
  int edits = rng->IntIn(1, 4);
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->Below(out.size());
    switch (rng->IntIn(0, 3)) {
      case 0:
        out[pos] = "<>&\"'/=[]{}()\0x"[rng->Below(14)];
        break;
      case 1:
        out.erase(pos, rng->IntIn(1, 8));
        break;
      case 2:
        out.insert(pos, out.substr(pos, rng->IntIn(1, 8)));
        break;
      default:
        out.resize(pos);
        break;
    }
  }
  return out;
}

// Any grammar the parser accepts must be internally consistent enough to
// drive the validator without crashing.
void CheckAcceptedGrammar(const Dtd& dtd) {
  EXPECT_GE(dtd.root(), 0);
  EXPECT_LT(static_cast<size_t>(dtd.root()), dtd.name_count());
  for (NameId id = 0; id < static_cast<NameId>(dtd.name_count()); ++id) {
    (void)dtd.production(id);
    (void)dtd.ChildrenOf(id);
  }
  (void)dtd.IsRecursive();
  (void)dtd.ReachableFromRoot();
}

// Round-trip property: rendering a random grammar to DTD text and
// reparsing it yields a grammar that accepts the same documents.
TEST(DtdFuzz, RandomGrammarsSurviveRenderReparseRoundTrip) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    int name_count = 0;
    Dtd dtd = RandomDtd(seed, &name_count);
    std::string text = RenderDtd(dtd);
    auto reparsed = ParseDtd(text, dtd.production(dtd.root()).tag);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status().ToString() << "\n"
        << text;
    // Documents valid under the original grammar stay valid under the
    // round-tripped one.
    for (uint64_t d = 0; d < 3; ++d) {
      DocGenerator gen(dtd, seed * 10 + d);
      auto doc = gen.Generate();
      ASSERT_TRUE(doc.ok()) << doc.status().ToString();
      auto interp = Validate(*doc, *reparsed);
      EXPECT_TRUE(interp.ok()) << "seed " << seed << " doc " << d << ": "
                               << interp.status().ToString() << "\n"
                               << text;
    }
  }
}

// Byte-level fuzz over rendered random grammars — a much wider corpus of
// declaration shapes than the single XMark DTD xml_fuzz_test mutates.
TEST(DtdFuzz, MutatedRandomGrammarsNeverCrashTheParser) {
  int accepted = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    int name_count = 0;
    Dtd dtd = RandomDtd(seed, &name_count);
    std::string base = RenderDtd(dtd);
    std::string root_tag = dtd.production(dtd.root()).tag;
    Rng rng(seed * 0x9e3779b9ULL + 5);
    for (int i = 0; i < 400; ++i) {
      std::string mutated = Mutate(base, &rng);
      auto result = ParseDtd(mutated, root_tag);
      if (result.ok()) {
        ++accepted;
        CheckAcceptedGrammar(*result);
      }
    }
  }
  // Unmutated text parses, so some near-misses must squeak through, and
  // plenty must be rejected.
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 4000);
}

// Every prefix truncation of a real-world DTD must be cleanly accepted or
// rejected — truncation is the classic corrupted-download failure mode.
TEST(DtdFuzz, TruncatedXMarkDtdNeverCrashesTheParser) {
  std::string base(XMarkDtdText());
  for (size_t len = 0; len <= base.size(); len += 7) {
    std::string prefix = base.substr(0, len);
    auto result = ParseDtd(prefix, "site");
    if (result.ok()) CheckAcceptedGrammar(*result);
  }
}

// Targeted ATTLIST fuzz: the attribute-declaration sublanguage has its
// own grammar (types, #REQUIRED/#IMPLIED/defaults) that generic byte
// mutation rarely reaches with interesting values.
TEST(DtdFuzz, AttlistGarbageNeverCrashesTheParser) {
  const char* kAttlistFragments[] = {
      "id ID #REQUIRED",
      "name CDATA #IMPLIED",
      "x CDATA \"default\"",
      "a ID #REQUIRED b CDATA #IMPLIED",
      "id ID",                 // missing default spec
      "#REQUIRED",             // missing name and type
      "id #REQUIRED",          // missing type
      "id ID \"unterminated",  // unclosed default literal
      "id ID #FIXED",          // unsupported default kind
      "",                      // empty declaration body
  };
  Rng rng(0xa771157);
  for (int i = 0; i < 2000; ++i) {
    std::string text = "<!ELEMENT r (a*)>\n<!ELEMENT a (#PCDATA)>\n";
    int decls = rng.IntIn(1, 3);
    for (int d = 0; d < decls; ++d) {
      std::string body =
          kAttlistFragments[rng.Below(sizeof(kAttlistFragments) /
                                      sizeof(kAttlistFragments[0]))];
      // Half the time, corrupt the fragment further.
      if (rng.Chance(1, 2)) body = Mutate(body, &rng);
      text += "<!ATTLIST " + std::string(rng.Chance(1, 2) ? "a" : "ghost") +
              " " + body + ">\n";
    }
    auto result = ParseDtd(text, "r");
    if (result.ok()) CheckAcceptedGrammar(*result);
  }
}

// Declaration-level structural fuzz: shuffled, duplicated, and dropped
// declarations are either rejected or parsed into a consistent grammar.
TEST(DtdFuzz, ShuffledAndDuplicatedDeclarationsStayConsistent) {
  std::string base(XMarkDtdText());
  // Split into individual declarations.
  std::vector<std::string> decls;
  size_t pos = 0;
  while ((pos = base.find("<!", pos)) != std::string::npos) {
    size_t end = base.find('>', pos);
    if (end == std::string::npos) break;
    decls.push_back(base.substr(pos, end - pos + 1));
    pos = end + 1;
  }
  ASSERT_GT(decls.size(), 10u);
  Rng rng(0x5affe);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::string> shuffled = decls;
    // Fisher–Yates with the repo RNG (std::shuffle needs a URBG).
    for (size_t k = shuffled.size(); k > 1; --k) {
      std::swap(shuffled[k - 1], shuffled[rng.Below(k)]);
    }
    if (rng.Chance(1, 2)) {
      shuffled.push_back(shuffled[rng.Below(shuffled.size())]);  // duplicate
    }
    if (rng.Chance(1, 2)) {
      shuffled.erase(shuffled.begin() +
                     static_cast<ptrdiff_t>(rng.Below(shuffled.size())));
    }
    std::string text;
    for (const std::string& d : shuffled) text += d + "\n";
    auto result = ParseDtd(text, "site");
    if (result.ok()) CheckAcceptedGrammar(*result);
  }
}

}  // namespace
}  // namespace xmlproj
