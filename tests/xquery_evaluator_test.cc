#include "xquery/evaluator.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xquery/parser.h"

namespace xmlproj {
namespace {

constexpr char kAuctions[] = R"(
<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name></person>
    <person id="p2"><name>Carol</name><age>41</age></person>
  </people>
  <auctions>
    <auction seller="p0"><price>10</price><loc>rome</loc></auction>
    <auction seller="p1"><price>25</price><loc>kyoto</loc></auction>
    <auction seller="p0"><price>40</price><loc>oslo</loc></auction>
  </auctions>
</site>
)";

class XQueryEvalTest : public ::testing::Test {
 protected:
  XQueryEvalTest() : doc_(std::move(ParseXml(kAuctions)).value()) {}

  std::string Run(std::string_view query_text) {
    auto query = ParseXQuery(query_text);
    EXPECT_TRUE(query.ok()) << query_text << "\n"
                            << query.status().ToString();
    if (!query.ok()) return "<parse error>";
    XQueryEvaluator eval(doc_);
    auto result = eval.Evaluate(**query);
    EXPECT_TRUE(result.ok()) << query_text << "\n"
                             << result.status().ToString();
    if (!result.ok()) return "<eval error>";
    return eval.Serialize(*result);
  }

  Document doc_;
};

TEST_F(XQueryEvalTest, PathQuery) {
  EXPECT_EQ("<name>Alice</name><name>Bob</name><name>Carol</name>",
            Run("/site/people/person/name"));
}

TEST_F(XQueryEvalTest, ForReturn) {
  EXPECT_EQ("AliceBobCarol",
            Run("for $p in /site/people/person return $p/name/text()"));
}

TEST_F(XQueryEvalTest, WhereFilters) {
  EXPECT_EQ("<loc>kyoto</loc><loc>oslo</loc>",
            Run("for $a in /site/auctions/auction "
                "where $a/price > 20 return $a/loc"));
}

TEST_F(XQueryEvalTest, LetBinding) {
  EXPECT_EQ("3", Run("let $p := /site/people/person return count($p)"));
}

TEST_F(XQueryEvalTest, Aggregates) {
  EXPECT_EQ("75", Run("sum(/site/auctions/auction/price)"));
  EXPECT_EQ("2", Run("count(/site/people/person/age)"));
}

TEST_F(XQueryEvalTest, ConstructorWithAttribute) {
  EXPECT_EQ(
      "<seller id=\"p0\"/><seller id=\"p1\"/><seller id=\"p0\"/>",
      Run("for $a in /site/auctions/auction "
          "return <seller id=\"{$a/@seller}\"/>"));
}

TEST_F(XQueryEvalTest, ConstructorWithContent) {
  EXPECT_EQ(
      "<r><name>Alice</name><name>Bob</name><name>Carol</name></r>",
      Run("<r>{/site/people/person/name}</r>"));
}

TEST_F(XQueryEvalTest, NestedConstructors) {
  EXPECT_EQ("<out><in>x</in>3</out>",
            Run("<out><in>x</in>{1 + 2}</out>"));
}

TEST_F(XQueryEvalTest, Join) {
  EXPECT_EQ(
      "<s name=\"Alice\">2</s><s name=\"Bob\">1</s><s name=\"Carol\">0</s>",
      Run("for $p in /site/people/person "
          "let $a := for $t in /site/auctions/auction "
          "          where $t/@seller = $p/@id return $t "
          "return <s name=\"{$p/name/text()}\">{count($a)}</s>"));
}

TEST_F(XQueryEvalTest, IfThenElse) {
  EXPECT_EQ(
      "<p>30</p><p>none</p><p>41</p>",
      Run("for $p in /site/people/person return "
          "if ($p/age) then <p>{$p/age/text()}</p> else <p>none</p>"));
}

TEST_F(XQueryEvalTest, IfWithEmptyElse) {
  // Text nodes serialize adjacently (no atomic-value spacing).
  EXPECT_EQ("AliceCarol",
            Run("for $p in /site/people/person return "
                "if ($p/age) then $p/name/text() else ()"));
}

TEST_F(XQueryEvalTest, OrderByString) {
  EXPECT_EQ(
      "kyotooslorome",
      Run("for $a in /site/auctions/auction order by $a/loc "
          "return $a/loc/text()"));
}

TEST_F(XQueryEvalTest, OrderByNumericDescending) {
  EXPECT_EQ("402510",
            Run("for $a in /site/auctions/auction "
                "order by $a/price descending return $a/price/text()"));
}

TEST_F(XQueryEvalTest, SequenceConcatenation) {
  EXPECT_EQ("<age>30</age><age>41</age>3",
            Run("/site/people/person/age, count(/site/people/person)"));
}

TEST_F(XQueryEvalTest, ArithmeticOverValues) {
  EXPECT_EQ("<v>20</v><v>50</v><v>80</v>",
            Run("for $a in /site/auctions/auction "
                "return <v>{$a/price * 2}</v>"));
}

TEST_F(XQueryEvalTest, AtomicSpacing) {
  EXPECT_EQ("1 2 3", Run("1, 2, 3"));
}

TEST_F(XQueryEvalTest, VariableInPredicate) {
  EXPECT_EQ("<name>Alice</name>",
            Run("for $a in /site/auctions/auction[price = 10] "
                "return /site/people/person[@id = $a/@seller]/name"));
}

TEST_F(XQueryEvalTest, EmptySequenceResult) {
  EXPECT_EQ("", Run("for $p in /site/people/person "
                    "where $p/age > 100 return $p/name"));
}

TEST_F(XQueryEvalTest, UnboundVariableFails) {
  auto query = ParseXQuery("$nope/name");
  ASSERT_TRUE(query.ok());
  XQueryEvaluator eval(doc_);
  EXPECT_FALSE(eval.Evaluate(**query).ok());
}

TEST_F(XQueryEvalTest, NavigatingConstructedFails) {
  auto query = ParseXQuery("let $x := <a><b/></a> return $x/b");
  ASSERT_TRUE(query.ok());
  XQueryEvaluator eval(doc_);
  auto result = eval.Evaluate(**query);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kUnsupported, result.status().code());
}

TEST_F(XQueryEvalTest, SomeQuantifier) {
  EXPECT_EQ("AliceCarol",
            Run("for $p in /site/people/person "
                "where some $a in $p/age satisfies $a > 20 "
                "return $p/name/text()"));
  EXPECT_EQ("true",
            Run("some $a in /site/auctions/auction satisfies "
                "$a/price > 30"));
  EXPECT_EQ("false",
            Run("some $a in /site/auctions/auction satisfies "
                "$a/price > 100"));
  EXPECT_EQ("false", Run("some $x in () satisfies 1 = 1"));
}

TEST_F(XQueryEvalTest, EveryQuantifier) {
  EXPECT_EQ("true",
            Run("every $a in /site/auctions/auction satisfies "
                "$a/price >= 10"));
  EXPECT_EQ("false",
            Run("every $a in /site/auctions/auction satisfies "
                "$a/price > 10"));
  EXPECT_EQ("true", Run("every $x in () satisfies 1 = 0"));
}

TEST_F(XQueryEvalTest, MemoryMeterRecordsPeak) {
  auto query = ParseXQuery(
      "for $p in /site/people/person return <x>{$p/name/text()}</x>");
  ASSERT_TRUE(query.ok());
  MemoryMeter meter;
  XQueryEvaluator eval(doc_, &meter);
  ASSERT_TRUE(eval.Evaluate(**query).ok());
  EXPECT_GT(meter.peak(), 0u);
}

}  // namespace
}  // namespace xmlproj
