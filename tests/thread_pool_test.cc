// Unit tests for the bounded MPMC queue and the Status-propagating thread
// pool (common/thread_pool.h): FIFO order, blocking at capacity,
// close-and-drain semantics, error propagation, shutdown behavior.

#include "common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace xmlproj {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(10);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(queue.Push(std::move(v)));
  }
  for (int i = 0; i < 5; ++i) {
    std::optional<int> v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, CloseDrainsPendingItemsThenSignalsEnd) {
  BoundedQueue<int> queue(10);
  int a = 1, b = 2;
  ASSERT_TRUE(queue.Push(std::move(a)));
  ASSERT_TRUE(queue.Push(std::move(b)));
  queue.Close();
  int c = 3;
  EXPECT_FALSE(queue.Push(std::move(c)));  // rejected after Close
  EXPECT_EQ(queue.Pop(), 1);               // pending items still delivered
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);    // drained
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPopped) {
  BoundedQueue<int> queue(2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      int v = i;
      ASSERT_TRUE(queue.Push(std::move(v)));
      pushed.fetch_add(1);
    }
  });
  // The producer can get at most capacity ahead of the consumer.
  std::vector<int> received;
  for (int i = 0; i < 6; ++i) {
    std::optional<int> v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    received.push_back(*v);
    EXPECT_LE(pushed.load(), i + 1 + 2);
  }
  producer.join();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(BoundedQueueTest, CloseReleasesBlockedProducer) {
  BoundedQueue<int> queue(1);
  int a = 1;
  ASSERT_TRUE(queue.Push(std::move(a)));
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    int b = 2;
    rejected.store(!queue.Push(std::move(b)));  // blocks: queue is full
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_TRUE(rejected.load());
}

TEST(BoundedQueueTest, ConcurrentProducersAndConsumersLoseNothing) {
  BoundedQueue<int> queue(4);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int v = p * kPerProducer + i;
        ASSERT_TRUE(queue.Push(std::move(v)));
      }
    });
  }
  std::mutex mu;
  std::vector<int> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<int> v = queue.Pop()) {
        std::lock_guard<std::mutex> lock(mu);
        received.push_back(*v);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();
  std::sort(received.begin(), received.end());
  ASSERT_EQ(received.size(), kPerProducer * kProducers);
  for (int i = 0; i < kPerProducer * kProducers; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<Status>> done;
  for (int i = 0; i < 100; ++i) {
    done.push_back(pool.Submit([&counter] {
      counter.fetch_add(1);
      return Status::Ok();
    }));
  }
  for (std::future<Status>& f : done) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesTaskStatusThroughFuture) {
  ThreadPool pool(2);
  std::future<Status> ok = pool.Submit([] { return Status::Ok(); });
  std::future<Status> bad =
      pool.Submit([] { return InvalidError("document 7 is malformed"); });
  EXPECT_TRUE(ok.get().ok());
  Status status = bad.get();
  EXPECT_EQ(status.code(), StatusCode::kInvalid);
  EXPECT_EQ(status.message(), "document 7 is malformed");
}

TEST(ThreadPoolTest, ShutdownRunsQueuedTasksBeforeJoining) {
  std::atomic<int> counter{0};
  std::vector<std::future<Status>> done;
  {
    // One worker and a deep queue: most tasks are still queued when
    // Shutdown starts; all of them must still run.
    ThreadPool pool(1, /*queue_capacity=*/64);
    for (int i = 0; i < 32; ++i) {
      done.push_back(pool.Submit([&counter] {
        counter.fetch_add(1);
        return Status::Ok();
      }));
    }
    pool.Shutdown();
  }
  EXPECT_EQ(counter.load(), 32);
  for (std::future<Status>& f : done) EXPECT_TRUE(f.get().ok());
}

TEST(ThreadPoolTest, SubmitAfterShutdownResolvesToCancelled) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::future<Status> done = pool.Submit([] { return Status::Ok(); });
  Status status = done.get();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Submit([] { return Status::Ok(); }).get().ok());
  pool.Shutdown();
  pool.Shutdown();  // and the destructor makes a third call
}

TEST(ThreadPoolTest, DefaultThreadCountUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

}  // namespace
}  // namespace xmlproj
