// Unit tests for the bounded MPMC queue and the Status-propagating thread
// pool (common/thread_pool.h): FIFO order, blocking at capacity,
// close-and-drain semantics, error propagation, shutdown behavior.

#include "common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace xmlproj {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(10);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(queue.Push(std::move(v)));
  }
  for (int i = 0; i < 5; ++i) {
    std::optional<int> v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, CloseDrainsPendingItemsThenSignalsEnd) {
  BoundedQueue<int> queue(10);
  int a = 1, b = 2;
  ASSERT_TRUE(queue.Push(std::move(a)));
  ASSERT_TRUE(queue.Push(std::move(b)));
  queue.Close();
  int c = 3;
  EXPECT_FALSE(queue.Push(std::move(c)));  // rejected after Close
  EXPECT_EQ(queue.Pop(), 1);               // pending items still delivered
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);    // drained
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPopped) {
  BoundedQueue<int> queue(2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      int v = i;
      ASSERT_TRUE(queue.Push(std::move(v)));
      pushed.fetch_add(1);
    }
  });
  // The producer can get at most capacity ahead of the consumer.
  std::vector<int> received;
  for (int i = 0; i < 6; ++i) {
    std::optional<int> v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    received.push_back(*v);
    EXPECT_LE(pushed.load(), i + 1 + 2);
  }
  producer.join();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(BoundedQueueTest, CloseReleasesBlockedProducer) {
  BoundedQueue<int> queue(1);
  int a = 1;
  ASSERT_TRUE(queue.Push(std::move(a)));
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    int b = 2;
    rejected.store(!queue.Push(std::move(b)));  // blocks: queue is full
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_TRUE(rejected.load());
}

TEST(BoundedQueueTest, ConcurrentProducersAndConsumersLoseNothing) {
  BoundedQueue<int> queue(4);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int v = p * kPerProducer + i;
        ASSERT_TRUE(queue.Push(std::move(v)));
      }
    });
  }
  std::mutex mu;
  std::vector<int> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<int> v = queue.Pop()) {
        std::lock_guard<std::mutex> lock(mu);
        received.push_back(*v);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();
  std::sort(received.begin(), received.end());
  ASSERT_EQ(received.size(), kPerProducer * kProducers);
  for (int i = 0; i < kPerProducer * kProducers; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<Status>> done;
  for (int i = 0; i < 100; ++i) {
    done.push_back(pool.Submit([&counter] {
      counter.fetch_add(1);
      return Status::Ok();
    }));
  }
  for (std::future<Status>& f : done) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesTaskStatusThroughFuture) {
  ThreadPool pool(2);
  std::future<Status> ok = pool.Submit([] { return Status::Ok(); });
  std::future<Status> bad =
      pool.Submit([] { return InvalidError("document 7 is malformed"); });
  EXPECT_TRUE(ok.get().ok());
  Status status = bad.get();
  EXPECT_EQ(status.code(), StatusCode::kInvalid);
  EXPECT_EQ(status.message(), "document 7 is malformed");
}

TEST(ThreadPoolTest, ShutdownRunsQueuedTasksBeforeJoining) {
  std::atomic<int> counter{0};
  std::vector<std::future<Status>> done;
  {
    // One worker and a deep queue: most tasks are still queued when
    // Shutdown starts; all of them must still run.
    ThreadPool pool(1, /*queue_capacity=*/64);
    for (int i = 0; i < 32; ++i) {
      done.push_back(pool.Submit([&counter] {
        counter.fetch_add(1);
        return Status::Ok();
      }));
    }
    pool.Shutdown();
  }
  EXPECT_EQ(counter.load(), 32);
  for (std::future<Status>& f : done) EXPECT_TRUE(f.get().ok());
}

TEST(ThreadPoolTest, SubmitAfterShutdownResolvesToCancelled) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::future<Status> done = pool.Submit([] { return Status::Ok(); });
  Status status = done.get();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Submit([] { return Status::Ok(); }).get().ok());
  pool.Shutdown();
  pool.Shutdown();  // and the destructor makes a third call
}

TEST(ThreadPoolTest, DefaultThreadCountUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, DeadlineShutdownCancelsQueuedTasksCleanly) {
  std::atomic<int> executed{0};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> shutdown_called{false};
  ThreadPool pool(1, /*queue_capacity=*/64);
  // One worker parked in a gated task; everything behind it is queued and
  // cannot start until the gate opens — which happens only after Shutdown
  // has set the drain deadline, however loaded the machine is.
  std::future<Status> slow = pool.Submit([&started, &release] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::Ok();
  });
  std::vector<std::future<Status>> queued;
  for (int i = 0; i < 16; ++i) {
    queued.push_back(pool.Submit([&executed] {
      executed.fetch_add(1);
      return Status::Ok();
    }));
  }
  std::thread opener([&] {
    while (!shutdown_called.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Shutdown records the deadline before blocking in Join; by now it has.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.store(true);
  });
  // Wait until the worker has actually popped the gated task: the deadline
  // applies at pop time, so an unstarted task would be cancelled too.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Zero drain budget: the in-flight task still finishes (tasks are never
  // interrupted), but nothing queued may start.
  shutdown_called.store(true);
  EXPECT_FALSE(pool.Shutdown(std::chrono::milliseconds(0)));
  opener.join();
  EXPECT_TRUE(slow.get().ok());
  for (std::future<Status>& f : queued) {
    Status status = f.get();
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_NE(status.message().find("drain deadline"), std::string::npos);
  }
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(pool.cancelled_tasks(), 16u);
}

TEST(ThreadPoolTest, DeadlineShutdownDrainsWhenTheBudgetIsGenerous) {
  std::atomic<int> executed{0};
  ThreadPool pool(2, /*queue_capacity=*/64);
  std::vector<std::future<Status>> done;
  for (int i = 0; i < 24; ++i) {
    done.push_back(pool.Submit([&executed] {
      executed.fetch_add(1);
      return Status::Ok();
    }));
  }
  EXPECT_TRUE(pool.Shutdown(std::chrono::seconds(30)));
  for (std::future<Status>& f : done) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(executed.load(), 24);
  EXPECT_EQ(pool.cancelled_tasks(), 0u);
}

TEST(ThreadPoolTest, SubmitDuringDeadlineShutdownResolvesCancelledNotHang) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::future<Status> slow = pool.Submit([&started] {
    started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return Status::Ok();
  });
  // The deadline applies at pop time; wait for the worker to pick up the
  // slow task so it runs to completion rather than being cancelled.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Submit from another thread while Shutdown is draining: the queue is
  // already closed, so the task must resolve kCancelled — never hang.
  std::future<Status> late;
  std::thread submitter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    late = pool.Submit([] { return Status::Ok(); });
  });
  (void)pool.Shutdown(std::chrono::milliseconds(0));  // liveness is the test
  submitter.join();
  EXPECT_TRUE(slow.get().ok());
  EXPECT_EQ(late.get().code(), StatusCode::kCancelled);
}

TEST(ThreadPoolTest, DeadlineShutdownIsIdempotentWithPlainShutdown) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Submit([] { return Status::Ok(); }).get().ok());
  EXPECT_TRUE(pool.Shutdown(std::chrono::seconds(1)));
  pool.Shutdown();  // plain shutdown after deadline shutdown is a no-op
  EXPECT_TRUE(pool.Shutdown(std::chrono::seconds(1)));
}

}  // namespace
}  // namespace xmlproj
