#include "dtd/name_set.h"

#include <gtest/gtest.h>

namespace xmlproj {
namespace {

TEST(NameSet, StartsEmpty) {
  NameSet s(100);
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(0u, s.Count());
  EXPECT_FALSE(s.Contains(0));
}

TEST(NameSet, AddRemoveContains) {
  NameSet s(130);  // spans three words
  s.Add(0);
  s.Add(63);
  s.Add(64);
  s.Add(129);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(63));
  EXPECT_TRUE(s.Contains(64));
  EXPECT_TRUE(s.Contains(129));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(4u, s.Count());
  s.Remove(64);
  EXPECT_FALSE(s.Contains(64));
  EXPECT_EQ(3u, s.Count());
}

TEST(NameSet, ContainsOutOfRangeIsFalse) {
  NameSet s(10);
  EXPECT_FALSE(s.Contains(-1));
  EXPECT_FALSE(s.Contains(10));
  EXPECT_FALSE(s.Contains(kNoName));
}

TEST(NameSet, SetOperations) {
  NameSet a = NameSet::Of(70, {1, 2, 3, 65});
  NameSet b = NameSet::Of(70, {3, 4, 65});
  EXPECT_EQ(NameSet::Of(70, {1, 2, 3, 4, 65}), a | b);
  EXPECT_EQ(NameSet::Of(70, {3, 65}), a & b);
  EXPECT_EQ(NameSet::Of(70, {1, 2}), a - b);
}

TEST(NameSet, SubsetAndIntersects) {
  NameSet a = NameSet::Of(70, {1, 2});
  NameSet b = NameSet::Of(70, {1, 2, 3});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  NameSet c = NameSet::Of(70, {5});
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(NameSet(70).IsSubsetOf(a));
}

TEST(NameSet, ForEachInOrder) {
  NameSet s = NameSet::Of(200, {7, 0, 199, 64});
  std::vector<NameId> seen;
  s.ForEach([&seen](NameId n) { seen.push_back(n); });
  EXPECT_EQ((std::vector<NameId>{0, 7, 64, 199}), seen);
  EXPECT_EQ(seen, s.ToVector());
}

TEST(NameSet, HashDiffersForDifferentSets) {
  NameSet a = NameSet::Of(70, {1});
  NameSet b = NameSet::Of(70, {2});
  EXPECT_NE(a.Hash(), b.Hash());
  NameSet c = NameSet::Of(70, {1});
  EXPECT_EQ(a.Hash(), c.Hash());
}

TEST(NameSet, EqualityRequiresSameUniverse) {
  NameSet a(64);
  NameSet b(65);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace xmlproj
