#include "dtd/dtd_parser.h"

#include <gtest/gtest.h>

namespace xmlproj {
namespace {

Dtd MustParse(std::string_view text, std::string_view root) {
  auto result = ParseDtd(text, root);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(DtdParser, SimpleGrammar) {
  Dtd dtd = MustParse(R"(
    <!ELEMENT book (title, author+, year?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
  )",
                      "book");
  // 4 elements + 3 per-element String names + the synthetic #document.
  EXPECT_EQ(8u, dtd.name_count());
  NameId book = dtd.NameOfTag("book");
  ASSERT_NE(kNoName, book);
  EXPECT_EQ(book, dtd.root());
  NameId title = dtd.NameOfTag("title");
  EXPECT_TRUE(dtd.ChildrenOf(book).Contains(title));
  EXPECT_NE(kNoName, dtd.StringNameOf(title));
  EXPECT_EQ(kNoName, dtd.StringNameOf(book));
}

TEST(DtdParser, StringNamesAreDistinctPerElement) {
  // The §6 heuristic: every Y -> String occurs on exactly one RHS.
  Dtd dtd = MustParse(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
  )",
                      "a");
  NameId b_text = dtd.StringNameOf(dtd.NameOfTag("b"));
  NameId c_text = dtd.StringNameOf(dtd.NameOfTag("c"));
  ASSERT_NE(kNoName, b_text);
  ASSERT_NE(kNoName, c_text);
  EXPECT_NE(b_text, c_text);
  EXPECT_TRUE(dtd.IsStringName(b_text));
  EXPECT_EQ("b#text", dtd.production(b_text).name);
}

TEST(DtdParser, MixedContent) {
  Dtd dtd = MustParse(R"(
    <!ELEMENT p (#PCDATA | bold | emph)*>
    <!ELEMENT bold (#PCDATA)>
    <!ELEMENT emph (#PCDATA)>
  )",
                      "p");
  NameId p = dtd.NameOfTag("p");
  EXPECT_TRUE(dtd.ChildrenOf(p).Contains(dtd.NameOfTag("bold")));
  EXPECT_TRUE(dtd.ChildrenOf(p).Contains(dtd.StringNameOf(p)));
}

TEST(DtdParser, MixedContentRequiresStarWithNames) {
  auto result = ParseDtd("<!ELEMENT p (#PCDATA | b)>\n<!ELEMENT b EMPTY>",
                         "p");
  EXPECT_FALSE(result.ok());
}

TEST(DtdParser, EmptyAndAny) {
  Dtd dtd = MustParse(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b EMPTY>
    <!ELEMENT c ANY>
  )",
                      "a");
  NameId b = dtd.NameOfTag("b");
  NameId c = dtd.NameOfTag("c");
  EXPECT_TRUE(dtd.ChildrenOf(b).Empty());
  // ANY reaches every element name.
  EXPECT_TRUE(dtd.ChildrenOf(c).Contains(dtd.NameOfTag("a")));
  EXPECT_TRUE(dtd.ChildrenOf(c).Contains(b));
}

TEST(DtdParser, Attlist) {
  Dtd dtd = MustParse(R"(
    <!ELEMENT item (name)>
    <!ELEMENT name (#PCDATA)>
    <!ATTLIST item
              id ID #REQUIRED
              featured CDATA #IMPLIED
              kind (big|small) "small">
  )",
                      "item");
  const Production& item = dtd.production(dtd.NameOfTag("item"));
  ASSERT_EQ(3u, item.attributes.size());
  EXPECT_EQ("id", item.attributes[0].name);
  EXPECT_TRUE(item.attributes[0].required);
  EXPECT_FALSE(item.attributes[1].required);
  EXPECT_EQ("kind", item.attributes[2].name);
}

TEST(DtdParser, SkipsCommentsEntitiesNotations) {
  Dtd dtd = MustParse(R"(
    <!-- a comment with <!ELEMENT fake (x)> inside -->
    <!ENTITY amp2 "&#38;">
    <!NOTATION vrml PUBLIC "VRML 1.0">
    <!ELEMENT a EMPTY>
  )",
                      "a");
  EXPECT_EQ(2u, dtd.name_count());  // 'a' + #document
}

TEST(DtdParser, ForwardReferences) {
  // b is referenced before it is declared.
  Dtd dtd = MustParse("<!ELEMENT a (b)>\n<!ELEMENT b EMPTY>", "a");
  EXPECT_TRUE(dtd.ChildrenOf(dtd.root()).Contains(dtd.NameOfTag("b")));
}

TEST(DtdParser, UndeclaredReferenceFails) {
  auto result = ParseDtd("<!ELEMENT a (ghost)>", "a");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ghost"), std::string::npos);
}

TEST(DtdParser, DuplicateElementFails) {
  auto result = ParseDtd("<!ELEMENT a EMPTY>\n<!ELEMENT a EMPTY>", "a");
  EXPECT_FALSE(result.ok());
}

TEST(DtdParser, UnknownRootFails) {
  auto result = ParseDtd("<!ELEMENT a EMPTY>", "zzz");
  EXPECT_FALSE(result.ok());
}

TEST(DtdParser, NestedGroupsWithOccurrences) {
  Dtd dtd = MustParse(R"(
    <!ELEMENT a ((b, c)+ | d*)>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
    <!ELEMENT d EMPTY>
  )",
                      "a");
  const ContentMatcher& m = dtd.MatcherOf(dtd.root());
  NameId b = dtd.NameOfTag("b");
  NameId c = dtd.NameOfTag("c");
  NameId d = dtd.NameOfTag("d");
  EXPECT_TRUE(m.Matches(std::vector<NameId>{b, c, b, c}));
  EXPECT_TRUE(m.Matches(std::vector<NameId>{d, d}));
  EXPECT_TRUE(m.Matches(std::vector<NameId>{}));  // d* allows empty
  EXPECT_FALSE(m.Matches(std::vector<NameId>{b}));
  EXPECT_FALSE(m.Matches(std::vector<NameId>{b, c, d}));
}

TEST(DtdParser, ReachabilityRelations) {
  Dtd dtd = MustParse(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b (c*)>
    <!ELEMENT c (#PCDATA)>
    <!ELEMENT orphan EMPTY>
  )",
                      "a");
  NameId a = dtd.NameOfTag("a");
  NameId b = dtd.NameOfTag("b");
  NameId c = dtd.NameOfTag("c");
  NameId orphan = dtd.NameOfTag("orphan");
  EXPECT_TRUE(dtd.DescendantsOf(a).Contains(c));
  EXPECT_TRUE(dtd.DescendantsOf(a).Contains(dtd.StringNameOf(c)));
  EXPECT_FALSE(dtd.DescendantsOf(a).Contains(orphan));
  EXPECT_TRUE(dtd.AncestorsOf(c).Contains(a));
  EXPECT_TRUE(dtd.ParentsOf(c).Contains(b));
  EXPECT_FALSE(dtd.ParentsOf(c).Contains(a));
  EXPECT_TRUE(dtd.ReachableFromRoot().Contains(c));
  EXPECT_FALSE(dtd.ReachableFromRoot().Contains(orphan));
}

TEST(DtdParser, StructuralProperties) {
  // Recursive DTD.
  Dtd rec = MustParse("<!ELEMENT a (a*)>", "a");
  EXPECT_TRUE(rec.IsRecursive());
  EXPECT_TRUE(rec.IsStarGuarded());

  // The paper's non-*-guarded example: X -> c[Y | Z].
  Dtd guarded = MustParse(R"(
    <!ELEMENT c (a | b)>
    <!ELEMENT a (a*)>
    <!ELEMENT b (#PCDATA)>
  )",
                          "c");
  EXPECT_FALSE(guarded.IsStarGuarded());
  EXPECT_TRUE(guarded.IsRecursive());

  // Parent-ambiguous: Z is a child of X and a grandchild via Y
  // (the §4.1 example {X -> a[Y,Z], Y -> b[Z], Z -> c[]}).
  Dtd amb = MustParse(R"(
    <!ELEMENT a (b, c)>
    <!ELEMENT b (c)>
    <!ELEMENT c EMPTY>
  )",
                      "a");
  EXPECT_FALSE(amb.IsParentUnambiguous());
  EXPECT_FALSE(amb.IsRecursive());

  Dtd unamb = MustParse(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b (c)>
    <!ELEMENT c EMPTY>
  )",
                        "a");
  EXPECT_TRUE(unamb.IsParentUnambiguous());
}

TEST(DtdParser, ParameterEntitiesRejected) {
  auto result = ParseDtd("%ent;\n<!ELEMENT a EMPTY>", "a");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace xmlproj
