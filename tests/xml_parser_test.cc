#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/serializer.h"

namespace xmlproj {
namespace {

Document MustParse(std::string_view text, XmlParseOptions options = {}) {
  auto result = ParseXml(text, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(XmlParser, SimpleElement) {
  Document doc = MustParse("<a><b>hello</b></a>");
  NodeId root = doc.root();
  EXPECT_EQ("a", doc.tag_name(root));
  NodeId b = doc.node(root).first_child;
  EXPECT_EQ("b", doc.tag_name(b));
  EXPECT_EQ("hello", doc.StringValue(b));
}

TEST(XmlParser, SelfClosingAndAttributes) {
  Document doc = MustParse(R"(<a x="1" y='two'><b/></a>)");
  NodeId root = doc.root();
  EXPECT_EQ("1", *doc.FindAttribute(root, "x"));
  EXPECT_EQ("two", *doc.FindAttribute(root, "y"));
  NodeId b = doc.node(root).first_child;
  EXPECT_EQ(NodeKind::kElement, doc.kind(b));
  EXPECT_EQ(kNullNode, doc.node(b).first_child);
}

TEST(XmlParser, DropsWhitespaceOnlyTextByDefault) {
  Document doc = MustParse("<a>\n  <b>x</b>\n  <b>y</b>\n</a>");
  NodeId root = doc.root();
  int children = 0;
  for (NodeId c = doc.node(root).first_child; c != kNullNode;
       c = doc.node(c).next_sibling) {
    EXPECT_EQ(NodeKind::kElement, doc.kind(c));
    ++children;
  }
  EXPECT_EQ(2, children);
}

TEST(XmlParser, KeepsWhitespaceWhenAsked) {
  XmlParseOptions options;
  options.keep_whitespace_text = true;
  Document doc = MustParse("<a> <b>x</b> </a>", options);
  NodeId root = doc.root();
  EXPECT_EQ(NodeKind::kText, doc.kind(doc.node(root).first_child));
}

TEST(XmlParser, EntityReferences) {
  Document doc = MustParse("<a>x &lt; y &amp;&amp; a &gt; b &#65;</a>");
  EXPECT_EQ("x < y && a > b A", doc.StringValue(doc.root()));
}

TEST(XmlParser, HexCharacterReference) {
  Document doc = MustParse("<a>&#x41;&#x20AC;</a>");
  EXPECT_EQ("A\xE2\x82\xAC", doc.StringValue(doc.root()));
}

TEST(XmlParser, AttributeEntities) {
  Document doc = MustParse(R"(<a t="a&amp;b&quot;c"/>)");
  EXPECT_EQ("a&b\"c", *doc.FindAttribute(doc.root(), "t"));
}

TEST(XmlParser, CdataSection) {
  Document doc = MustParse("<a><![CDATA[<not><parsed>&amp;]]></a>");
  EXPECT_EQ("<not><parsed>&amp;", doc.StringValue(doc.root()));
}

TEST(XmlParser, CommentsAndProcessingInstructions) {
  Document doc = MustParse(
      "<?xml version=\"1.0\"?><!-- top --><a><!-- in -->"
      "<?pi data?><b>x</b></a><!-- after -->");
  EXPECT_EQ("x", doc.StringValue(doc.root()));
}

TEST(XmlParser, DoctypeCaptured) {
  Document doc = MustParse(
      "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]>\n<a>t</a>");
  EXPECT_EQ("a", doc.doctype_name());
  EXPECT_EQ("<!ELEMENT a (#PCDATA)>", doc.doctype_internal_subset());
}

TEST(XmlParser, DoctypeWithoutSubset) {
  Document doc = MustParse("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>");
  EXPECT_EQ("a", doc.doctype_name());
  EXPECT_EQ("", doc.doctype_internal_subset());
}

TEST(XmlParser, MixedContent) {
  Document doc = MustParse("<p>one <b>two</b> three</p>");
  NodeId root = doc.root();
  NodeId t1 = doc.node(root).first_child;
  EXPECT_EQ(NodeKind::kText, doc.kind(t1));
  EXPECT_EQ("one ", doc.text(t1));
  NodeId b = doc.node(t1).next_sibling;
  EXPECT_EQ("b", doc.tag_name(b));
  NodeId t2 = doc.node(b).next_sibling;
  EXPECT_EQ(" three", doc.text(t2));
}

TEST(XmlParser, DeeplyNestedDoesNotOverflow) {
  std::string text;
  constexpr int kDepth = 50000;
  for (int i = 0; i < kDepth; ++i) text += "<d>";
  text += "x";
  for (int i = 0; i < kDepth; ++i) text += "</d>";
  auto result = ParseXml(text);
  // The recursive-descent parser recurses per element; this guards the
  // practical depth used by the benchmarks rather than unbounded input.
  if (result.ok()) {
    EXPECT_EQ(static_cast<size_t>(kDepth) + 2, result.value().size());
  }
}

struct ErrorCase {
  const char* name;
  const char* input;
};

class XmlParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(XmlParserErrorTest, Rejects) {
  auto result = ParseXml(GetParam().input);
  EXPECT_FALSE(result.ok()) << GetParam().input;
  EXPECT_EQ(StatusCode::kParseError, result.status().code());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserErrorTest,
    ::testing::Values(
        ErrorCase{"MismatchedTag", "<a><b></a></b>"},
        ErrorCase{"UnclosedRoot", "<a><b></b>"},
        ErrorCase{"TextAtTopLevel", "hello<a/>"},
        ErrorCase{"ContentAfterRoot", "<a/><b/>"},
        ErrorCase{"UnterminatedComment", "<a><!-- oops</a>"},
        ErrorCase{"UnknownEntity", "<a>&unknown;</a>"},
        ErrorCase{"BadAttrSyntax", "<a x=1/>"},
        ErrorCase{"LtInAttribute", "<a x=\"<\"/>"},
        ErrorCase{"UnterminatedCdata", "<a><![CDATA[x</a>"},
        ErrorCase{"EmptyInput", ""},
        ErrorCase{"BadCharRef", "<a>&#xQQ;</a>"}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) {
      return info.param.name;
    });

TEST(XmlParser, RoundTripThroughSerializer) {
  const char* text =
      R"(<site><people><person id="p0"><name>Joe &amp; Co</name></person>)"
      R"(</people></site>)";
  Document doc = MustParse(text);
  std::string serialized = SerializeDocument(doc);
  Document again = MustParse(serialized);
  EXPECT_EQ(SerializeDocument(again), serialized);
  EXPECT_EQ(doc.size(), again.size());
}

TEST(DecodeXmlReferences, Basic) {
  auto result = DecodeXmlReferences("a&lt;b&amp;c");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ("a<b&c", result.value());
  EXPECT_FALSE(DecodeXmlReferences("oops&lt").ok());
}

}  // namespace
}  // namespace xmlproj
