// MmapSource contract tests: regular files map (including empty files
// and sizes that do not land on a page boundary), non-seekable
// descriptors fall back to the read loop, and missing files error
// cleanly.

#include "xml/mmap_source.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "projection/pruner.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/splice.h"

namespace xmlproj {
namespace {

// Writes `content` to a fresh temp file and returns its path.
std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  std::string path = ::testing::TempDir() + "mmap_source_" + name;
  FILE* f = fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  if (!content.empty()) {
    EXPECT_EQ(fwrite(content.data(), 1, content.size(), f), content.size());
  }
  fclose(f);
  return path;
}

TEST(MmapSourceTest, MapsRegularFile) {
  std::string content = "<root><a>hello</a></root>";
  std::string path = WriteTempFile("regular.xml", content);
  auto source = MmapSource::OpenFile(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_TRUE(source->mapped());
  EXPECT_EQ(source->view(), content);
  unlink(path.c_str());
}

TEST(MmapSourceTest, EmptyFileYieldsEmptyView) {
  std::string path = WriteTempFile("empty.xml", "");
  auto source = MmapSource::OpenFile(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_FALSE(source->mapped());  // no zero-length mapping is created
  EXPECT_TRUE(source->view().empty());
  unlink(path.c_str());
}

TEST(MmapSourceTest, UnalignedTailBytesAreExact) {
  // One page plus one byte: the mapping's final page is mostly past EOF;
  // the view must end exactly at the file size and the tail byte must be
  // readable and correct.
  std::string content(4096, 'x');
  content.push_back('!');
  std::string path = WriteTempFile("unaligned.xml", content);
  auto source = MmapSource::OpenFile(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ASSERT_EQ(source->view().size(), 4097u);
  EXPECT_EQ(source->view().back(), '!');
  EXPECT_EQ(source->view(), content);
  unlink(path.c_str());
}

TEST(MmapSourceTest, NonSeekablePipeFallsBackToReadLoop) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string content = "<doc>from a pipe</doc>";
  ASSERT_EQ(write(fds[1], content.data(), content.size()),
            static_cast<ssize_t>(content.size()));
  close(fds[1]);
  auto source = MmapSource::FromFd(fds[0]);
  close(fds[0]);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_FALSE(source->mapped());
  EXPECT_EQ(source->view(), content);
}

TEST(MmapSourceTest, EmptyPipeYieldsEmptyView) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[1]);
  auto source = MmapSource::FromFd(fds[0]);
  close(fds[0]);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_TRUE(source->view().empty());
}

TEST(MmapSourceTest, MissingFileErrors) {
  auto source =
      MmapSource::OpenFile(::testing::TempDir() + "does_not_exist.xml");
  EXPECT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kUnavailable);
}

TEST(MmapSourceTest, MoveTransfersTheView) {
  std::string content = "<m>moved</m>";
  std::string path = WriteTempFile("move.xml", content);
  auto source = MmapSource::OpenFile(path);
  ASSERT_TRUE(source.ok());
  MmapSource moved = std::move(*source);
  EXPECT_EQ(moved.view(), content);
  // Fallback buffers must survive the move too (SSO would invalidate a
  // stale pointer).
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_EQ(write(fds[1], "ab", 2), 2);
  close(fds[1]);
  auto piped = MmapSource::FromFd(fds[0]);
  close(fds[0]);
  ASSERT_TRUE(piped.ok());
  MmapSource piped_moved = std::move(*piped);
  EXPECT_EQ(piped_moved.view(), "ab");
  unlink(path.c_str());
}

// End-to-end: prune straight off the mapping through the splice sink —
// the zero-copy path the tool runs.
TEST(MmapSourceTest, PruningRunsDirectlyOffTheMapping) {
  auto dtd = LoadXMarkDtd();
  ASSERT_TRUE(dtd.ok());
  std::string doc =
      "<site><regions></regions><categories></categories>"
      "<catgraph></catgraph><people></people><open_auctions>"
      "</open_auctions><closed_auctions></closed_auctions></site>";
  std::string path = WriteTempFile("site.xml", doc);
  auto source = MmapSource::OpenFile(path);
  ASSERT_TRUE(source.ok());
  NameSet projector = dtd->AllNames();
  std::string spliced;
  SplicingSerializingHandler sink(source->view(), &spliced);
  StreamingPruner pruner(*dtd, projector, &sink);
  ASSERT_TRUE(ParseXmlStream(source->view(), &pruner).ok());
  sink.Finish();
  std::string reference;
  SerializingHandler ref_sink(&reference);
  StreamingPruner ref_pruner(*dtd, projector, &ref_sink);
  ASSERT_TRUE(ParseXmlStream(source->view(), &ref_pruner).ok());
  EXPECT_EQ(spliced, reference);
  unlink(path.c_str());
}

}  // namespace
}  // namespace xmlproj
