// Classifies the reconstructed XML Query Use Cases DTD corpus with the
// Def 4.3 property detectors (the paper's §4.1 statistics), and runs the
// static analysis over every corpus grammar as a robustness sweep.

#include <cstdio>

#include <gtest/gtest.h>

#include "projection/projection.h"
#include "xmark/usecases.h"

namespace xmlproj {
namespace {

TEST(UseCases, AllTenParse) {
  ASSERT_EQ(10u, UseCaseDtds().size());
  for (const UseCaseDtd& entry : UseCaseDtds()) {
    auto dtd = LoadUseCaseDtd(entry);
    EXPECT_TRUE(dtd.ok()) << entry.name << ": "
                          << dtd.status().ToString();
  }
}

TEST(UseCases, PropertyStatisticsMatchThePapersShape) {
  // §4.1: "seven are both non-recursive and *-guarded, one is only
  // *-guarded, one is only non-recursive, and just one does not satisfy
  // either property"; parent-unambiguity holds for "five on the ten".
  // Our corpus is a reconstruction, so we assert the qualitative shape:
  // a solid majority is non-recursive and *-guarded; recursion and
  // unguarded unions both occur; parent-ambiguity occurs.
  int star_guarded = 0;
  int non_recursive = 0;
  int both = 0;
  int parent_unambiguous = 0;
  for (const UseCaseDtd& entry : UseCaseDtds()) {
    Dtd dtd = std::move(LoadUseCaseDtd(entry)).value();
    bool sg = dtd.IsStarGuarded();
    bool nr = !dtd.IsRecursive();
    bool pu = dtd.IsParentUnambiguous();
    star_guarded += sg;
    non_recursive += nr;
    both += sg && nr;
    parent_unambiguous += pu;
    std::printf("  %-7s %-13s %-13s %s\n", entry.name.c_str(),
                sg ? "*-guarded" : "not-guarded",
                nr ? "non-recursive" : "recursive",
                pu ? "parent-unambiguous" : "parent-ambiguous");
  }
  EXPECT_GE(both, 5);              // majority satisfies both
  EXPECT_LE(non_recursive, 9);     // recursion occurs (TREE/SGML/PARTS)
  EXPECT_LE(star_guarded, 9);      // unguarded unions occur (XMP)
  EXPECT_GE(parent_unambiguous, 3);
  EXPECT_LE(parent_unambiguous, 9);
}

TEST(UseCases, KnownClassifications) {
  auto find = [](const char* name) {
    for (const UseCaseDtd& entry : UseCaseDtds()) {
      if (entry.name == name) {
        return std::move(LoadUseCaseDtd(entry)).value();
      }
    }
    ADD_FAILURE() << "missing use case " << name;
    return Dtd();
  };
  // XMP's (author+ | editor+) is an unguarded union, but it is flat.
  Dtd xmp = find("XMP");
  EXPECT_FALSE(xmp.IsStarGuarded());
  EXPECT_FALSE(xmp.IsRecursive());
  // TREE/SGML/PARTS recurse.
  EXPECT_TRUE(find("TREE").IsRecursive());
  EXPECT_TRUE(find("SGML").IsRecursive());
  EXPECT_TRUE(find("PARTS").IsRecursive());
  // R is flat relational: both properties hold.
  Dtd r = find("R");
  EXPECT_TRUE(r.IsStarGuarded());
  EXPECT_FALSE(r.IsRecursive());
  EXPECT_TRUE(r.IsParentUnambiguous());
  // STRONG's addresses live under distinct parent names: unambiguous.
  EXPECT_TRUE(find("STRONG").IsParentUnambiguous());
  // TREE's title appears both directly under section and deeper inside
  // nested sections: parent-ambiguous. SEQ's action likewise (directly
  // under section.content and inside prep).
  EXPECT_FALSE(find("TREE").IsParentUnambiguous());
  EXPECT_FALSE(find("SEQ").IsParentUnambiguous());
}

TEST(UseCases, StaticAnalysisRunsOnTheWholeCorpus) {
  // The analyzer must cope with every grammar in the corpus, including
  // the recursive and parent-ambiguous ones.
  const char* queries[] = {
      "//title",
      "/descendant-or-self::node()[title]/title",
      "//section/ancestor::node()",
      "//*[1]",
      "//node()[not(child::node())]",
  };
  for (const UseCaseDtd& entry : UseCaseDtds()) {
    Dtd dtd = std::move(LoadUseCaseDtd(entry)).value();
    for (const char* q : queries) {
      auto analysis = AnalyzeXPathQuery(dtd, q);
      ASSERT_TRUE(analysis.ok())
          << entry.name << " / " << q << ": "
          << analysis.status().ToString();
      EXPECT_TRUE(analysis->projector.Contains(dtd.root()))
          << entry.name << " / " << q;
    }
  }
}

}  // namespace
}  // namespace xmlproj
