file(REMOVE_RECURSE
  "CMakeFiles/xmlproj_common.dir/status.cc.o"
  "CMakeFiles/xmlproj_common.dir/status.cc.o.d"
  "CMakeFiles/xmlproj_common.dir/strings.cc.o"
  "CMakeFiles/xmlproj_common.dir/strings.cc.o.d"
  "libxmlproj_common.a"
  "libxmlproj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlproj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
