file(REMOVE_RECURSE
  "libxmlproj_common.a"
)
