# Empty dependencies file for xmlproj_common.
# This may be replaced when dependencies are built.
