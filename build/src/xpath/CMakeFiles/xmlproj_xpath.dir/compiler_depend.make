# Empty compiler generated dependencies file for xmlproj_xpath.
# This may be replaced when dependencies are built.
