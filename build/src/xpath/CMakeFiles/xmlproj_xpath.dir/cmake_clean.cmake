file(REMOVE_RECURSE
  "CMakeFiles/xmlproj_xpath.dir/approximate.cc.o"
  "CMakeFiles/xmlproj_xpath.dir/approximate.cc.o.d"
  "CMakeFiles/xmlproj_xpath.dir/ast.cc.o"
  "CMakeFiles/xmlproj_xpath.dir/ast.cc.o.d"
  "CMakeFiles/xmlproj_xpath.dir/evaluator.cc.o"
  "CMakeFiles/xmlproj_xpath.dir/evaluator.cc.o.d"
  "CMakeFiles/xmlproj_xpath.dir/parser.cc.o"
  "CMakeFiles/xmlproj_xpath.dir/parser.cc.o.d"
  "CMakeFiles/xmlproj_xpath.dir/xpathl.cc.o"
  "CMakeFiles/xmlproj_xpath.dir/xpathl.cc.o.d"
  "libxmlproj_xpath.a"
  "libxmlproj_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlproj_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
