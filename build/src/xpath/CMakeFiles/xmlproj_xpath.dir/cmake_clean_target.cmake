file(REMOVE_RECURSE
  "libxmlproj_xpath.a"
)
