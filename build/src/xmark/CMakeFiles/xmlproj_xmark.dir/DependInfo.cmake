
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmark/generator.cc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/generator.cc.o" "gcc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/generator.cc.o.d"
  "/root/repo/src/xmark/queries.cc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/queries.cc.o" "gcc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/queries.cc.o.d"
  "/root/repo/src/xmark/usecases.cc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/usecases.cc.o" "gcc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/usecases.cc.o.d"
  "/root/repo/src/xmark/workbench.cc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/workbench.cc.o" "gcc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/workbench.cc.o.d"
  "/root/repo/src/xmark/xmark_dtd.cc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/xmark_dtd.cc.o" "gcc" "src/xmark/CMakeFiles/xmlproj_xmark.dir/xmark_dtd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlproj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlproj_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/xmlproj_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xmlproj_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/projection/CMakeFiles/xmlproj_projection.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/xmlproj_xquery.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
