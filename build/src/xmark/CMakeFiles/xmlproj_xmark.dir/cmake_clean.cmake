file(REMOVE_RECURSE
  "CMakeFiles/xmlproj_xmark.dir/generator.cc.o"
  "CMakeFiles/xmlproj_xmark.dir/generator.cc.o.d"
  "CMakeFiles/xmlproj_xmark.dir/queries.cc.o"
  "CMakeFiles/xmlproj_xmark.dir/queries.cc.o.d"
  "CMakeFiles/xmlproj_xmark.dir/usecases.cc.o"
  "CMakeFiles/xmlproj_xmark.dir/usecases.cc.o.d"
  "CMakeFiles/xmlproj_xmark.dir/workbench.cc.o"
  "CMakeFiles/xmlproj_xmark.dir/workbench.cc.o.d"
  "CMakeFiles/xmlproj_xmark.dir/xmark_dtd.cc.o"
  "CMakeFiles/xmlproj_xmark.dir/xmark_dtd.cc.o.d"
  "libxmlproj_xmark.a"
  "libxmlproj_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlproj_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
