# Empty compiler generated dependencies file for xmlproj_xmark.
# This may be replaced when dependencies are built.
