file(REMOVE_RECURSE
  "libxmlproj_xmark.a"
)
