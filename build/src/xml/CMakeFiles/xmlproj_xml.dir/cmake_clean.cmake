file(REMOVE_RECURSE
  "CMakeFiles/xmlproj_xml.dir/document.cc.o"
  "CMakeFiles/xmlproj_xml.dir/document.cc.o.d"
  "CMakeFiles/xmlproj_xml.dir/parser.cc.o"
  "CMakeFiles/xmlproj_xml.dir/parser.cc.o.d"
  "CMakeFiles/xmlproj_xml.dir/serializer.cc.o"
  "CMakeFiles/xmlproj_xml.dir/serializer.cc.o.d"
  "libxmlproj_xml.a"
  "libxmlproj_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlproj_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
