# Empty compiler generated dependencies file for xmlproj_xml.
# This may be replaced when dependencies are built.
