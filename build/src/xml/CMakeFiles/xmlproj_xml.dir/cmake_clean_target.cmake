file(REMOVE_RECURSE
  "libxmlproj_xml.a"
)
