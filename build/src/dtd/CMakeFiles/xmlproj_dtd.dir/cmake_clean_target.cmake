file(REMOVE_RECURSE
  "libxmlproj_dtd.a"
)
