
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtd/content_model.cc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/content_model.cc.o" "gcc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/content_model.cc.o.d"
  "/root/repo/src/dtd/dataguide.cc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/dataguide.cc.o" "gcc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/dataguide.cc.o.d"
  "/root/repo/src/dtd/dtd.cc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/dtd.cc.o" "gcc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/dtd.cc.o.d"
  "/root/repo/src/dtd/dtd_parser.cc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/dtd_parser.cc.o" "gcc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/dtd_parser.cc.o.d"
  "/root/repo/src/dtd/validator.cc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/validator.cc.o" "gcc" "src/dtd/CMakeFiles/xmlproj_dtd.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlproj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlproj_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
