# Empty compiler generated dependencies file for xmlproj_dtd.
# This may be replaced when dependencies are built.
