file(REMOVE_RECURSE
  "CMakeFiles/xmlproj_dtd.dir/content_model.cc.o"
  "CMakeFiles/xmlproj_dtd.dir/content_model.cc.o.d"
  "CMakeFiles/xmlproj_dtd.dir/dataguide.cc.o"
  "CMakeFiles/xmlproj_dtd.dir/dataguide.cc.o.d"
  "CMakeFiles/xmlproj_dtd.dir/dtd.cc.o"
  "CMakeFiles/xmlproj_dtd.dir/dtd.cc.o.d"
  "CMakeFiles/xmlproj_dtd.dir/dtd_parser.cc.o"
  "CMakeFiles/xmlproj_dtd.dir/dtd_parser.cc.o.d"
  "CMakeFiles/xmlproj_dtd.dir/validator.cc.o"
  "CMakeFiles/xmlproj_dtd.dir/validator.cc.o.d"
  "libxmlproj_dtd.a"
  "libxmlproj_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlproj_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
