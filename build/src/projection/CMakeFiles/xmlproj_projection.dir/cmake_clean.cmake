file(REMOVE_RECURSE
  "CMakeFiles/xmlproj_projection.dir/projection.cc.o"
  "CMakeFiles/xmlproj_projection.dir/projection.cc.o.d"
  "CMakeFiles/xmlproj_projection.dir/projector_inference.cc.o"
  "CMakeFiles/xmlproj_projection.dir/projector_inference.cc.o.d"
  "CMakeFiles/xmlproj_projection.dir/pruner.cc.o"
  "CMakeFiles/xmlproj_projection.dir/pruner.cc.o.d"
  "CMakeFiles/xmlproj_projection.dir/type_inference.cc.o"
  "CMakeFiles/xmlproj_projection.dir/type_inference.cc.o.d"
  "libxmlproj_projection.a"
  "libxmlproj_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlproj_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
