file(REMOVE_RECURSE
  "libxmlproj_projection.a"
)
