
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/projection/projection.cc" "src/projection/CMakeFiles/xmlproj_projection.dir/projection.cc.o" "gcc" "src/projection/CMakeFiles/xmlproj_projection.dir/projection.cc.o.d"
  "/root/repo/src/projection/projector_inference.cc" "src/projection/CMakeFiles/xmlproj_projection.dir/projector_inference.cc.o" "gcc" "src/projection/CMakeFiles/xmlproj_projection.dir/projector_inference.cc.o.d"
  "/root/repo/src/projection/pruner.cc" "src/projection/CMakeFiles/xmlproj_projection.dir/pruner.cc.o" "gcc" "src/projection/CMakeFiles/xmlproj_projection.dir/pruner.cc.o.d"
  "/root/repo/src/projection/type_inference.cc" "src/projection/CMakeFiles/xmlproj_projection.dir/type_inference.cc.o" "gcc" "src/projection/CMakeFiles/xmlproj_projection.dir/type_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlproj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlproj_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/xmlproj_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xmlproj_xpath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
