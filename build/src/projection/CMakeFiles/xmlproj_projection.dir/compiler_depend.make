# Empty compiler generated dependencies file for xmlproj_projection.
# This may be replaced when dependencies are built.
