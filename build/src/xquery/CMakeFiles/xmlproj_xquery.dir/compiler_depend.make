# Empty compiler generated dependencies file for xmlproj_xquery.
# This may be replaced when dependencies are built.
