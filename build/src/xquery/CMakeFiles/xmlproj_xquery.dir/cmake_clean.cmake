file(REMOVE_RECURSE
  "CMakeFiles/xmlproj_xquery.dir/ast.cc.o"
  "CMakeFiles/xmlproj_xquery.dir/ast.cc.o.d"
  "CMakeFiles/xmlproj_xquery.dir/evaluator.cc.o"
  "CMakeFiles/xmlproj_xquery.dir/evaluator.cc.o.d"
  "CMakeFiles/xmlproj_xquery.dir/parser.cc.o"
  "CMakeFiles/xmlproj_xquery.dir/parser.cc.o.d"
  "CMakeFiles/xmlproj_xquery.dir/path_extraction.cc.o"
  "CMakeFiles/xmlproj_xquery.dir/path_extraction.cc.o.d"
  "libxmlproj_xquery.a"
  "libxmlproj_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlproj_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
