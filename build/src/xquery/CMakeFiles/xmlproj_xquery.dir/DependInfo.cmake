
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xquery/ast.cc" "src/xquery/CMakeFiles/xmlproj_xquery.dir/ast.cc.o" "gcc" "src/xquery/CMakeFiles/xmlproj_xquery.dir/ast.cc.o.d"
  "/root/repo/src/xquery/evaluator.cc" "src/xquery/CMakeFiles/xmlproj_xquery.dir/evaluator.cc.o" "gcc" "src/xquery/CMakeFiles/xmlproj_xquery.dir/evaluator.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/xquery/CMakeFiles/xmlproj_xquery.dir/parser.cc.o" "gcc" "src/xquery/CMakeFiles/xmlproj_xquery.dir/parser.cc.o.d"
  "/root/repo/src/xquery/path_extraction.cc" "src/xquery/CMakeFiles/xmlproj_xquery.dir/path_extraction.cc.o" "gcc" "src/xquery/CMakeFiles/xmlproj_xquery.dir/path_extraction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlproj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlproj_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xmlproj_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/projection/CMakeFiles/xmlproj_projection.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/xmlproj_dtd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
