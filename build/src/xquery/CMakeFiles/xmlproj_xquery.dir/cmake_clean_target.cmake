file(REMOVE_RECURSE
  "libxmlproj_xquery.a"
)
