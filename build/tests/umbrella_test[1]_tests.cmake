add_test([=[Umbrella.ReadmeQuickstartPipeline]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=Umbrella.ReadmeQuickstartPipeline]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.ReadmeQuickstartPipeline]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS Umbrella.ReadmeQuickstartPipeline)
