file(REMOVE_RECURSE
  "CMakeFiles/name_set_test.dir/name_set_test.cc.o"
  "CMakeFiles/name_set_test.dir/name_set_test.cc.o.d"
  "name_set_test"
  "name_set_test.pdb"
  "name_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
