# Empty dependencies file for name_set_test.
# This may be replaced when dependencies are built.
