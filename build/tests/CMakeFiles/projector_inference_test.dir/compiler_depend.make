# Empty compiler generated dependencies file for projector_inference_test.
# This may be replaced when dependencies are built.
