file(REMOVE_RECURSE
  "CMakeFiles/projector_inference_test.dir/projector_inference_test.cc.o"
  "CMakeFiles/projector_inference_test.dir/projector_inference_test.cc.o.d"
  "projector_inference_test"
  "projector_inference_test.pdb"
  "projector_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projector_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
