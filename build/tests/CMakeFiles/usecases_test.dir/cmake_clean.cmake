file(REMOVE_RECURSE
  "CMakeFiles/usecases_test.dir/usecases_test.cc.o"
  "CMakeFiles/usecases_test.dir/usecases_test.cc.o.d"
  "usecases_test"
  "usecases_test.pdb"
  "usecases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
