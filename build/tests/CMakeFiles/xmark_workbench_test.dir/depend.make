# Empty dependencies file for xmark_workbench_test.
# This may be replaced when dependencies are built.
