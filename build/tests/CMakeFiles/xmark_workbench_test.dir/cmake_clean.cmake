file(REMOVE_RECURSE
  "CMakeFiles/xmark_workbench_test.dir/xmark_workbench_test.cc.o"
  "CMakeFiles/xmark_workbench_test.dir/xmark_workbench_test.cc.o.d"
  "xmark_workbench_test"
  "xmark_workbench_test.pdb"
  "xmark_workbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_workbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
