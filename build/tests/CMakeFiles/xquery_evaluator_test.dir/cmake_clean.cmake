file(REMOVE_RECURSE
  "CMakeFiles/xquery_evaluator_test.dir/xquery_evaluator_test.cc.o"
  "CMakeFiles/xquery_evaluator_test.dir/xquery_evaluator_test.cc.o.d"
  "xquery_evaluator_test"
  "xquery_evaluator_test.pdb"
  "xquery_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
