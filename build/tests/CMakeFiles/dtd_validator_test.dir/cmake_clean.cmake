file(REMOVE_RECURSE
  "CMakeFiles/dtd_validator_test.dir/dtd_validator_test.cc.o"
  "CMakeFiles/dtd_validator_test.dir/dtd_validator_test.cc.o.d"
  "dtd_validator_test"
  "dtd_validator_test.pdb"
  "dtd_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtd_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
