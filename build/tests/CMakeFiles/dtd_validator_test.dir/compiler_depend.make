# Empty compiler generated dependencies file for dtd_validator_test.
# This may be replaced when dependencies are built.
