file(REMOVE_RECURSE
  "CMakeFiles/validating_pruner_test.dir/validating_pruner_test.cc.o"
  "CMakeFiles/validating_pruner_test.dir/validating_pruner_test.cc.o.d"
  "validating_pruner_test"
  "validating_pruner_test.pdb"
  "validating_pruner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validating_pruner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
