# Empty compiler generated dependencies file for validating_pruner_test.
# This may be replaced when dependencies are built.
