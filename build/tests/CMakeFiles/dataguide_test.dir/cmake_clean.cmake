file(REMOVE_RECURSE
  "CMakeFiles/dataguide_test.dir/dataguide_test.cc.o"
  "CMakeFiles/dataguide_test.dir/dataguide_test.cc.o.d"
  "dataguide_test"
  "dataguide_test.pdb"
  "dataguide_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataguide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
