file(REMOVE_RECURSE
  "CMakeFiles/xpathl_test.dir/xpathl_test.cc.o"
  "CMakeFiles/xpathl_test.dir/xpathl_test.cc.o.d"
  "xpathl_test"
  "xpathl_test.pdb"
  "xpathl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpathl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
