# Empty dependencies file for xpathl_test.
# This may be replaced when dependencies are built.
