file(REMOVE_RECURSE
  "CMakeFiles/xquery_extraction_test.dir/xquery_extraction_test.cc.o"
  "CMakeFiles/xquery_extraction_test.dir/xquery_extraction_test.cc.o.d"
  "xquery_extraction_test"
  "xquery_extraction_test.pdb"
  "xquery_extraction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_extraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
