# Empty compiler generated dependencies file for xquery_extraction_test.
# This may be replaced when dependencies are built.
