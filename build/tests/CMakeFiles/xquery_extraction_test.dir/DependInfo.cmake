
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xquery_extraction_test.cc" "tests/CMakeFiles/xquery_extraction_test.dir/xquery_extraction_test.cc.o" "gcc" "tests/CMakeFiles/xquery_extraction_test.dir/xquery_extraction_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xmark/CMakeFiles/xmlproj_xmark.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/xmlproj_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/projection/CMakeFiles/xmlproj_projection.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/xmlproj_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xmlproj_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlproj_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xmlproj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
