# Empty compiler generated dependencies file for dtd_content_model_test.
# This may be replaced when dependencies are built.
