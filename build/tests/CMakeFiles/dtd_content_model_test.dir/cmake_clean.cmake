file(REMOVE_RECURSE
  "CMakeFiles/dtd_content_model_test.dir/dtd_content_model_test.cc.o"
  "CMakeFiles/dtd_content_model_test.dir/dtd_content_model_test.cc.o.d"
  "dtd_content_model_test"
  "dtd_content_model_test.pdb"
  "dtd_content_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtd_content_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
