file(REMOVE_RECURSE
  "CMakeFiles/xquery_soundness_property_test.dir/xquery_soundness_property_test.cc.o"
  "CMakeFiles/xquery_soundness_property_test.dir/xquery_soundness_property_test.cc.o.d"
  "xquery_soundness_property_test"
  "xquery_soundness_property_test.pdb"
  "xquery_soundness_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_soundness_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
