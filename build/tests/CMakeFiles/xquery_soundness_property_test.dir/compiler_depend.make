# Empty compiler generated dependencies file for xquery_soundness_property_test.
# This may be replaced when dependencies are built.
