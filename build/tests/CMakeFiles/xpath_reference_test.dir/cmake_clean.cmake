file(REMOVE_RECURSE
  "CMakeFiles/xpath_reference_test.dir/xpath_reference_test.cc.o"
  "CMakeFiles/xpath_reference_test.dir/xpath_reference_test.cc.o.d"
  "xpath_reference_test"
  "xpath_reference_test.pdb"
  "xpath_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
