# Empty dependencies file for xpath_reference_test.
# This may be replaced when dependencies are built.
