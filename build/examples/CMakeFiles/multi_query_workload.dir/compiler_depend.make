# Empty compiler generated dependencies file for multi_query_workload.
# This may be replaced when dependencies are built.
