file(REMOVE_RECURSE
  "CMakeFiles/multi_query_workload.dir/multi_query_workload.cpp.o"
  "CMakeFiles/multi_query_workload.dir/multi_query_workload.cpp.o.d"
  "multi_query_workload"
  "multi_query_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_query_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
