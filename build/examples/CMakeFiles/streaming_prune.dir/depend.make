# Empty dependencies file for streaming_prune.
# This may be replaced when dependencies are built.
