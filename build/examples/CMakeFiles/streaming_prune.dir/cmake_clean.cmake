file(REMOVE_RECURSE
  "CMakeFiles/streaming_prune.dir/streaming_prune.cpp.o"
  "CMakeFiles/streaming_prune.dir/streaming_prune.cpp.o.d"
  "streaming_prune"
  "streaming_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
