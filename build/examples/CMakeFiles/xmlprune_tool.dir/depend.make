# Empty dependencies file for xmlprune_tool.
# This may be replaced when dependencies are built.
