file(REMOVE_RECURSE
  "CMakeFiles/xmlprune_tool.dir/xmlprune_tool.cpp.o"
  "CMakeFiles/xmlprune_tool.dir/xmlprune_tool.cpp.o.d"
  "xmlprune_tool"
  "xmlprune_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlprune_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
