# Empty dependencies file for bench_static_analysis.
# This may be replaced when dependencies are built.
