# Empty dependencies file for bench_pruning_throughput.
# This may be replaced when dependencies are built.
