file(REMOVE_RECURSE
  "CMakeFiles/bench_pruning_throughput.dir/bench_pruning_throughput.cc.o"
  "CMakeFiles/bench_pruning_throughput.dir/bench_pruning_throughput.cc.o.d"
  "bench_pruning_throughput"
  "bench_pruning_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pruning_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
