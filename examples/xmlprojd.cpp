// xmlprojd: the projection-as-a-service daemon.
//
// Serves the type-based pruning pipeline as a resident HTTP service on
// 127.0.0.1 (service/service.h): clients register query workloads
// against a named DTD, then stream documents through POST /prune and
// get the projected bytes back — byte-identical to what the batch
// parallel_prune_tool writes for the same document and workload. The
// XMark DTD is registered at startup under the name "xmark"; further
// DTDs arrive over POST /dtds.
//
//   xmlprojd [--port=N] [--journal=DIR] [--cache-capacity=N]
//            [--workers=N] [--max-document-bytes=N]
//            [--default-max-bytes=N] [--default-deadline-ms=N]
//            [--breaker] [--breaker-window=N] [--breaker-threshold=R]
//            [--breaker-cooldown-ms=N]
//            [--log=FILE|stderr] [--log-level=L] [--trace-export=FILE]
//            [--slo-latency-ms=N]
//
//   --port=N          listen port (default 0 = ephemeral; the chosen
//                     port is printed on stdout either way)
//   --journal=DIR     append one RunRecord per prune batch to
//                     DIR/journal.jsonl (obs/journal.h); the breaker,
//                     when enabled, seeds its window from the most
//                     recent record for this service
//   --breaker         enable the admission circuit breaker: /prune
//                     fast-fails 503 (+Retry-After) while open and
//                     /healthz reports open/503 in agreement
//   --log=DEST        structured one-line-JSON logs (obs/log.h) to a
//                     file path or the literal "stderr": access lines,
//                     prune errors, breaker transitions
//   --log-level=L     debug | info (default) | warn | error
//   --trace-export=F  append OTLP-shaped trace JSON lines to F (one
//                     resourceSpans document per flush interval)
//   --slo-latency-ms=N  per-workload SLO latency threshold (default
//                     250 ms); burn-rate gauges + the /statusz "slo"
//                     block follow from it
//
// Lifecycle: runs until SIGINT/SIGTERM, then drains in-flight requests,
// flushes pending journal batches, and exits 0. Exit codes: 0 clean
// shutdown, 1 bad usage, 2 startup failure (port in use, journal
// unopenable, DTD registration failure).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/circuit.h"
#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/push.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "service/service.h"
#include "xmark/xmark_dtd.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xmlproj;

  uint16_t port = 0;
  std::string journal_dir;
  std::string log_dest;
  std::string trace_export;
  bool breaker_enabled = false;
  CircuitBreakerOptions breaker_options;
  StructuredLoggerOptions log_options;
  SloOptions slo_options;
  ServiceLimits limits;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--journal", &value)) {
      journal_dir = value;
    } else if (ParseFlag(argv[i], "--cache-capacity", &value)) {
      limits.projector_cache_capacity =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      limits.worker_threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-document-bytes", &value)) {
      limits.max_document_bytes =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--default-max-bytes", &value)) {
      limits.default_max_bytes = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--default-deadline-ms", &value)) {
      limits.default_deadline_ms =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (std::strcmp(argv[i], "--breaker") == 0) {
      breaker_enabled = true;
    } else if (ParseFlag(argv[i], "--breaker-window", &value)) {
      breaker_options.window = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--breaker-threshold", &value)) {
      breaker_options.failure_threshold = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--breaker-cooldown-ms", &value)) {
      breaker_options.cooldown_ms =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--log", &value)) {
      log_dest = value;
    } else if (ParseFlag(argv[i], "--log-level", &value)) {
      if (!ParseLogLevel(value, &log_options.min_level)) {
        std::fprintf(stderr,
                     "--log-level=%s: want debug, info, warn or error\n",
                     value.c_str());
        return 1;
      }
    } else if (ParseFlag(argv[i], "--trace-export", &value)) {
      trace_export = value;
    } else if (ParseFlag(argv[i], "--slo-latency-ms", &value)) {
      slo_options.latency_threshold_ms =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  MetricsRegistry metrics;
  TraceCollector trace;
  std::string error;

  StructuredLogger logger;
  if (!log_dest.empty() && !logger.Open(log_dest, log_options, &error)) {
    std::fprintf(stderr, "log open failed: %s\n", error.c_str());
    return 2;
  }

  slo_options.metrics = &metrics;
  SloTracker slo(slo_options);

  breaker_options.metrics = &metrics;
  if (!log_dest.empty()) breaker_options.logger = &logger;
  CircuitBreaker breaker(breaker_options);
  if (!journal_dir.empty()) {
    std::vector<RunRecord> records;
    size_t skipped = 0;
    if (RunJournal::Load(journal_dir, &records, &skipped, &error)) {
      // Corrupt/truncated lines survive into the scrape so an operator
      // sees journal damage without reading the file.
      metrics.SetHelp("xmlproj_journal_corrupt_lines_total",
                      "Journal lines skipped as corrupt or truncated at "
                      "startup load.");
      metrics.GetCounter("xmlproj_journal_corrupt_lines_total")
          ->Increment(skipped);
      if (breaker_enabled && !records.empty()) {
        // Seed the breaker window from the most recent prior run: a
        // service that was failing when the last process died starts
        // degraded.
        const RunRecord& last = records.back();
        breaker.Seed(last.tasks, last.failed);
      }
    }
  }

  // OTLP trace export: a trace-only flusher draining new request/stage
  // spans to a JSONL file once a second (and once more on shutdown).
  JsonlFileSink trace_sink;
  PushFlusher trace_flusher;
  if (!trace_export.empty()) {
    if (!trace_sink.Open(trace_export, &error)) {
      std::fprintf(stderr, "trace export open failed: %s\n", error.c_str());
      return 2;
    }
    PushFlusherOptions flush_options;
    flush_options.trace = &trace;
    flush_options.trace_sink = &trace_sink;
    if (!trace_flusher.Start(flush_options, &error)) {
      std::fprintf(stderr, "trace export start failed: %s\n", error.c_str());
      return 2;
    }
  }

  ProjectionService service;
  if (!service.RegisterDtd("xmark", XMarkDtdText(), "site", &error)) {
    std::fprintf(stderr, "xmark DTD registration failed: %s\n", error.c_str());
    return 2;
  }

  ProjectionServiceOptions options;
  options.port = port;
  options.metrics = &metrics;
  options.trace = &trace;
  options.breaker = breaker_enabled ? &breaker : nullptr;
  options.logger = log_dest.empty() ? nullptr : &logger;
  options.slo = &slo;
  options.journal_dir = journal_dir;
  options.limits = limits;
  if (!service.Start(options, &error)) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 2;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("xmlprojd listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(service.port()));
  std::printf("dtds: xmark (root 'site'); POST /workloads to register\n");
  std::fflush(stdout);
  if (logger.enabled(LogLevel::kInfo)) {
    logger.Log(LogLevel::kInfo, "daemon.start",
               {{"port", static_cast<uint64_t>(service.port())},
                {"breaker", breaker_enabled ? 1 : 0}});
  }

  while (g_stop == 0) pause();  // signals end the nap

  std::printf("xmlprojd draining (%llu requests served)\n",
              static_cast<unsigned long long>(service.requests_served()));
  std::fflush(stdout);
  service.Stop();
  trace_flusher.Stop();  // final flush ships the tail spans
  if (logger.enabled(LogLevel::kInfo)) {
    logger.Log(LogLevel::kInfo, "daemon.stop",
               {{"requests", service.requests_served()}});
  }
  return 0;
}
