// Workload pruning: one pruned document serving a *bunch* of queries.
//
// One of the paper's advantages over Bressan et al. [9] is that type
// projectors are closed under union (§1.2): the union of the projectors of
// several queries is a projector that preserves all of them. This example
// prunes an XMark document once for a mixed XPath + XQuery workload and
// runs every query on the shared pruned document.
//
// Run: ./build/examples/multi_query_workload

#include <cstdio>
#include <vector>

#include "dtd/validator.h"
#include "projection/pruner.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xmark/workbench.h"
#include "xmark/xmark_dtd.h"
#include "xml/serializer.h"

int main() {
  using namespace xmlproj;

  auto dtd = LoadXMarkDtd();
  XMarkOptions options;
  options.scale = 0.005;
  auto doc = GenerateXMark(options);
  auto interp = Interpret(*doc, *dtd);
  size_t original_bytes = SerializeDocument(*doc).size();
  std::printf("XMark document: %.2f KB\n", original_bytes / 1024.0);

  // The workload: a few queries an auction dashboard might run together.
  std::vector<BenchmarkQuery> workload = {
      {"bids", QueryLanguage::kXQuery,
       "for $a in /site/open_auctions/open_auction "
       "return <bids>{count($a/bidder)}</bids>",
       ""},
      {"sellers", QueryLanguage::kXPath,
       "/site/open_auctions/open_auction/seller", ""},
      {"cheap", QueryLanguage::kXQuery,
       "for $a in /site/closed_auctions/closed_auction "
       "where $a/price < 40 return $a/price/text()",
       ""},
      {"gold", QueryLanguage::kXPath,
       "//item[contains(description, 'gold')]/name", ""},
  };

  // Union of the per-query projectors.
  NameSet projector(dtd->name_count());
  projector.Add(dtd->root());
  for (const BenchmarkQuery& query : workload) {
    auto one = AnalyzeBenchmarkQuery(query, *dtd);
    if (!one.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                   one.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-8s alone keeps %zu/%zu grammar names\n",
                query.id.c_str(), one->Count(), dtd->name_count());
    projector |= *one;
  }
  std::printf("workload projector keeps %zu/%zu grammar names\n",
              projector.Count(), dtd->name_count());

  auto pruned = PruneDocument(*doc, *interp, projector);
  size_t pruned_bytes = SerializeDocument(*pruned).size();
  std::printf("pruned once for the whole workload: %.2f KB (%.1f%%)\n",
              pruned_bytes / 1024.0,
              100.0 * pruned_bytes / original_bytes);

  // Every query must behave identically on the shared pruned document.
  for (const BenchmarkQuery& query : workload) {
    auto run_orig = RunBenchmarkQuery(query, *doc);
    auto run_pruned = RunBenchmarkQuery(query, *pruned);
    if (!run_orig.ok() || !run_pruned.ok()) {
      std::fprintf(stderr, "%s: evaluation failed\n", query.id.c_str());
      return 1;
    }
    bool same = run_orig->serialized == run_pruned->serialized;
    std::printf("  %-8s %4zu items, %s\n", query.id.c_str(),
                run_orig->result_items,
                same ? "identical on pruned document" : "MISMATCH");
    if (!same) return 1;
  }
  return 0;
}
