// parallel_prune_tool: fan a multi-document pruning workload across a
// thread pool (projection/pipeline.h).
//
// Usage:
//   parallel_prune_tool [--docs=N] [--scale=S] [--threads=T] [--validate]
//                       [--per-query] [--sweep]
//
// Generates a corpus of N XMark documents (xmlgen scale S each), infers
// the dashboard workload's projectors (merged by default, one task per
// document; --per-query fans documents × queries with per-query
// projectors), prunes the corpus on T workers (default: all cores) and
// prints aggregate throughput and size reduction. --sweep instead times
// thread counts 1..T and prints the speedup curve. --validate fuses DTD
// validation of the input into the pruning pass.
//
// Each per-document pass is still the paper's single bufferless one-pass
// traversal — parallelism is purely across documents/queries, so the
// output is byte-identical to the sequential pruner's (see
// tests/pipeline_test.cc).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "projection/pipeline.h"
#include "xmark/corpus.h"
#include "xmark/xmark_dtd.h"

namespace {

using namespace xmlproj;

double TimeRun(const std::vector<std::string>& corpus, const Dtd& dtd,
               const NameSet& merged, const std::vector<NameSet>& per_query,
               bool use_per_query, const PipelineOptions& options,
               std::vector<PipelineResult>* out) {
  auto start = std::chrono::steady_clock::now();
  auto results =
      use_per_query
          ? PruneCorpusPerQuery(corpus, dtd, per_query, options)
          : PruneCorpus(corpus, dtd, merged, options);
  auto stop = std::chrono::steady_clock::now();
  if (!results.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", results.status().ToString().c_str());
    std::exit(1);
  }
  *out = std::move(results).value();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  int docs = 8;
  double scale = 0.002;
  int threads = 0;  // hardware
  bool validate = false;
  bool per_query = false;
  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--docs=", 7) == 0) {
      docs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
    } else if (std::strcmp(arg, "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(arg, "--per-query") == 0) {
      per_query = true;
    } else if (std::strcmp(arg, "--sweep") == 0) {
      sweep = true;
    } else {
      std::fprintf(stderr,
                   "usage: parallel_prune_tool [--docs=N] [--scale=S] "
                   "[--threads=T] [--validate] [--per-query] [--sweep]\n");
      return 2;
    }
  }
  if (docs < 1) docs = 1;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }

  auto dtd = LoadXMarkDtd();
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD: %s\n", dtd.status().ToString().c_str());
    return 1;
  }

  XMarkCorpusOptions corpus_options;
  corpus_options.documents = docs;
  corpus_options.scale = scale;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  size_t in_bytes = CorpusBytes(corpus);
  std::printf("corpus: %d XMark documents, %.2f MB total\n", docs,
              in_bytes / (1024.0 * 1024.0));

  auto merged = WorkloadProjector(*dtd, XMarkDashboardWorkload());
  auto per_query_projectors =
      WorkloadProjectors(*dtd, XMarkDashboardWorkload());
  if (!merged.ok() || !per_query_projectors.ok()) {
    std::fprintf(stderr, "projector inference failed\n");
    return 1;
  }
  std::printf("workload: %zu queries, merged projector keeps %zu/%zu names"
              "%s%s\n",
              XMarkDashboardWorkload().size(), merged->Count(),
              dtd->name_count(), per_query ? ", per-query fan-out" : "",
              validate ? ", validating" : "");
  size_t tasks =
      per_query ? corpus.size() * per_query_projectors->size() : corpus.size();

  PipelineOptions options;
  options.validate = validate;
  std::vector<PipelineResult> results;
  if (sweep) {
    double base = 0;
    for (int t = 1; t <= threads; t = t < threads ? std::min(t * 2, threads)
                                                  : threads + 1) {
      options.num_threads = t;
      double seconds = TimeRun(corpus, *dtd, *merged, *per_query_projectors,
                               per_query, options, &results);
      if (t == 1) base = seconds;
      std::printf("  threads=%-2d  %8.1f ms  %7.1f MB/s  speedup %.2fx\n", t,
                  seconds * 1e3, in_bytes / seconds / (1024.0 * 1024.0),
                  base / seconds);
    }
  } else {
    options.num_threads = threads;
    double seconds = TimeRun(corpus, *dtd, *merged, *per_query_projectors,
                             per_query, options, &results);
    std::printf("%zu tasks on %d threads: %.1f ms, %.1f MB/s\n", tasks,
                threads, seconds * 1e3,
                in_bytes / seconds / (1024.0 * 1024.0));
  }
  size_t out_bytes = TotalOutputBytes(results);
  std::printf("projected output: %.2f MB (%.1f%% of input%s)\n",
              out_bytes / (1024.0 * 1024.0),
              100.0 * static_cast<double>(out_bytes) /
                  static_cast<double>(in_bytes * (per_query ? tasks / corpus.size() : 1)),
              per_query ? " x queries" : "");
  return 0;
}
