// parallel_prune_tool: fan a multi-document pruning workload across a
// thread pool (projection/pipeline.h).
//
// Usage:
//   parallel_prune_tool [--docs=N] [--scale=S] [--threads=T] [--validate]
//                       [--per-query] [--sweep]
//                       [--metrics-out=PATH] [--trace-out=PATH]
//                       [--prometheus-out=PATH]
//
// Generates a corpus of N XMark documents (xmlgen scale S each), infers
// the dashboard workload's projectors (merged by default, one task per
// document; --per-query fans documents × queries with per-query
// projectors), prunes the corpus on T workers (default: all cores) and
// prints aggregate throughput, size reduction, and the corpus pruning
// summary. --sweep instead times thread counts 1..T and prints the
// speedup curve. --validate fuses DTD validation of the input into the
// pruning pass.
//
// Observability (README "Observability"): --metrics-out writes the
// MetricsRegistry JSON dump (stage latency histograms, pruning counters,
// thread-pool queue stats), --prometheus-out the same registry in
// Prometheus text format, and --trace-out a Chrome-trace/Perfetto JSON
// with per-task queue-wait/parse/prune/serialize spans. Any of these
// flags enables instrumentation; with all absent the run is
// uninstrumented (no clock reads on the hot path).
//
// Each per-document pass is still the paper's single bufferless one-pass
// traversal — parallelism is purely across documents/queries, so the
// output is byte-identical to the sequential pruner's (see
// tests/pipeline_test.cc).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "projection/pipeline.h"
#include "xmark/corpus.h"
#include "xmark/xmark_dtd.h"

namespace {

using namespace xmlproj;

double RunOnce(const std::vector<std::string>& corpus, const Dtd& dtd,
               const NameSet& merged, const std::vector<NameSet>& per_query,
               bool use_per_query, const PipelineOptions& options,
               PipelineRun* out) {
  auto results =
      use_per_query
          ? PruneCorpusPerQuery(corpus, dtd, per_query, options)
          : PruneCorpus(corpus, dtd, merged, options);
  if (!results.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", results.status().ToString().c_str());
    std::exit(1);
  }
  *out = std::move(results).value();
  return out->summary.wall_seconds;
}

void PrintSummary(const PipelineSummary& s) {
  std::printf("\ncorpus pruning summary (Table 1 quantities):\n");
  std::printf("  tasks                %zu\n", s.tasks);
  std::printf("  input bytes          %zu (%.2f MB)\n", s.input_bytes,
              s.input_bytes / (1024.0 * 1024.0));
  std::printf("  output bytes         %zu (%.1f%% kept)\n", s.output_bytes,
              100.0 * s.ByteRatio());
  std::printf("  nodes                %zu -> %zu (%.1f%% kept)\n",
              s.input_nodes, s.kept_nodes, 100.0 * s.NodeRatio());
  std::printf("  text bytes           %zu -> %zu\n", s.input_text_bytes,
              s.kept_text_bytes);
  std::printf("  wall seconds         %.4f\n", s.wall_seconds);
}

void PrintStageTable(MetricsRegistry& registry) {
  struct Row {
    const char* label;
    const char* metric;
  };
  const Row rows[] = {
      {"queue-wait", "xmlproj_stage_queue_wait_ns"},
      {"parse", "xmlproj_stage_parse_ns"},
      {"prune", "xmlproj_stage_prune_ns"},
      {"serialize", "xmlproj_stage_serialize_ns"},
      {"task total", "xmlproj_stage_task_ns"},
  };
  std::printf("\nper-task stage latency (ms):\n");
  std::printf("  %-12s %8s %9s %9s %9s\n", "stage", "count", "mean", "p50",
              "p90");
  for (const Row& row : rows) {
    const Histogram* h = registry.GetHistogram(row.metric);
    if (h->Count() == 0) continue;
    std::printf("  %-12s %8llu %9.3f %9.3f %9.3f\n", row.label,
                static_cast<unsigned long long>(h->Count()), h->Mean() / 1e6,
                h->ApproxPercentile(0.5) / 1e6, h->ApproxPercentile(0.9) / 1e6);
  }
  std::printf("thread pool: queue depth peak %lld, busy %.1f ms over %lld "
              "tasks\n",
              static_cast<long long>(
                  registry.GetGauge("xmlproj_pool_queue_depth_peak")->Value()),
              registry.GetCounter("xmlproj_pool_busy_ns_total")->Value() / 1e6,
              static_cast<long long>(
                  registry.GetCounter("xmlproj_pool_tasks_total")->Value()));
}

bool DumpToFile(const char* what, const std::string& path,
                const std::string& content) {
  if (!WriteTextFile(path, content)) {
    std::fprintf(stderr, "cannot write %s file %s\n", what, path.c_str());
    return false;
  }
  std::printf("wrote %s (%s)\n", path.c_str(), what);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int docs = 8;
  double scale = 0.002;
  int threads = 0;  // hardware
  bool validate = false;
  bool per_query = false;
  bool sweep = false;
  std::string metrics_out;
  std::string prometheus_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--docs=", 7) == 0) {
      docs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
    } else if (std::strcmp(arg, "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(arg, "--per-query") == 0) {
      per_query = true;
    } else if (std::strcmp(arg, "--sweep") == 0) {
      sweep = true;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--prometheus-out=", 17) == 0) {
      prometheus_out = arg + 17;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else {
      std::fprintf(stderr,
                   "usage: parallel_prune_tool [--docs=N] [--scale=S] "
                   "[--threads=T] [--validate] [--per-query] [--sweep]\n"
                   "                           [--metrics-out=PATH] "
                   "[--prometheus-out=PATH] [--trace-out=PATH]\n");
      return 2;
    }
  }
  if (docs < 1) docs = 1;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }

  auto dtd = LoadXMarkDtd();
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD: %s\n", dtd.status().ToString().c_str());
    return 1;
  }

  XMarkCorpusOptions corpus_options;
  corpus_options.documents = docs;
  corpus_options.scale = scale;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  size_t in_bytes = CorpusBytes(corpus);
  std::printf("corpus: %d XMark documents, %.2f MB total\n", docs,
              in_bytes / (1024.0 * 1024.0));

  auto merged = WorkloadProjector(*dtd, XMarkDashboardWorkload());
  auto per_query_projectors =
      WorkloadProjectors(*dtd, XMarkDashboardWorkload());
  if (!merged.ok() || !per_query_projectors.ok()) {
    std::fprintf(stderr, "projector inference failed\n");
    return 1;
  }
  std::printf("workload: %zu queries, merged projector keeps %zu/%zu names"
              "%s%s\n",
              XMarkDashboardWorkload().size(), merged->Count(),
              dtd->name_count(), per_query ? ", per-query fan-out" : "",
              validate ? ", validating" : "");
  size_t tasks =
      per_query ? corpus.size() * per_query_projectors->size() : corpus.size();

  const bool instrument =
      !metrics_out.empty() || !prometheus_out.empty() || !trace_out.empty();
  MetricsRegistry registry;
  TraceCollector trace;
  PipelineOptions options;
  options.validate = validate;
  if (instrument) {
    options.metrics = &registry;
    if (!trace_out.empty()) options.trace = &trace;
  }

  PipelineRun run;
  if (sweep) {
    double base = 0;
    for (int t = 1; t <= threads; t = t < threads ? std::min(t * 2, threads)
                                                  : threads + 1) {
      options.num_threads = t;
      double seconds = RunOnce(corpus, *dtd, *merged, *per_query_projectors,
                               per_query, options, &run);
      if (t == 1) base = seconds;
      std::printf("  threads=%-2d  %8.1f ms  %7.1f MB/s  speedup %.2fx\n", t,
                  seconds * 1e3, in_bytes / seconds / (1024.0 * 1024.0),
                  base / seconds);
    }
  } else {
    options.num_threads = threads;
    double seconds = RunOnce(corpus, *dtd, *merged, *per_query_projectors,
                             per_query, options, &run);
    std::printf("%zu tasks on %d threads: %.1f ms, %.1f MB/s\n", tasks,
                threads, seconds * 1e3,
                in_bytes / seconds / (1024.0 * 1024.0));
  }
  PrintSummary(run.summary);
  if (instrument) PrintStageTable(registry);

  bool io_ok = true;
  if (!metrics_out.empty()) {
    std::string json;
    AppendMetricsJson(registry, &json);
    io_ok = DumpToFile("metrics JSON", metrics_out, json) && io_ok;
  }
  if (!prometheus_out.empty()) {
    std::string text;
    AppendPrometheusText(registry, &text);
    io_ok = DumpToFile("Prometheus metrics", prometheus_out, text) && io_ok;
  }
  if (!trace_out.empty()) {
    std::string json;
    trace.AppendChromeTraceJson(&json);
    io_ok = DumpToFile("Chrome trace", trace_out, json) && io_ok;
  }
  return io_ok ? 0 : 1;
}
