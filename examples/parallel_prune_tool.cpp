// parallel_prune_tool: fan a multi-document pruning workload across a
// thread pool (projection/pipeline.h).
//
// Usage:
//   parallel_prune_tool [--docs=N] [--scale=S] [--threads=T] [--validate]
//                       [--per-query] [--sweep] [--input=PATH ...]
//                       [--intra-doc-threads=K] [--chunk-bytes=N]
//                       [--policy=failfast|isolate|retry] [--retries=N]
//                       [--max-bytes=N] [--deadline-ms=N] [--degrade]
//                       [--failpoints=SPEC] [--failures-out=PATH]
//                       [--metrics-out=PATH] [--trace-out=PATH]
//                       [--prometheus-out=PATH] [--serve-metrics=PORT]
//                       [--serve-linger-ms=N] [--corpus-label=NAME]
//                       [--statsd=HOST:PORT] [--push-interval-ms=N]
//                       [--push-jsonl=PATH] [--journal=DIR] [--auto-budget]
//                       [--checkpoint=DIR] [--resume=DIR]
//                       [--resume-retry-quarantined] [--drain-ms=N]
//                       [--watchdog-factor=F]
//
// Generates a corpus of N XMark documents (xmlgen scale S each) — or, with
// one or more --input flags, reads the corpus from XML files instead —
// infers the dashboard workload's projectors (merged by default, one task
// per document; --per-query fans documents × queries with per-query
// projectors), prunes the corpus on T workers (default: all cores) and
// prints aggregate throughput, size reduction, and the corpus pruning
// summary. --sweep instead times thread counts 1..T and prints the
// speedup curve. --validate fuses DTD validation of the input into the
// pruning pass.
//
// Intra-document parallelism: --intra-doc-threads=K (K >= 2) splits each
// large document at top-level element boundaries and prunes up to K
// chunks of it concurrently (byte-identical output); --chunk-bytes sets
// the target chunk size. Numeric flags are strict: --threads 0 or
// negative, and a malformed or non-positive --chunk-bytes, are usage
// errors (exit 1), never silently clamped.
//
// Fault tolerance (README "Fault tolerance"): --policy selects the error
// policy (failfast is the default; isolate quarantines failing documents
// and prints a TaskFailure report; retry adds bounded retries for
// transient faults, --retries attempts per task). --max-bytes and
// --deadline-ms set the per-task resource budget, --degrade enables the
// identity-pass fallback for off-grammar documents, and --failpoints arms
// the deterministic fault injector (same spec syntax as the
// XMLPROJ_FAILPOINTS environment variable, which is honored when the flag
// is absent). --failures-out writes the TaskFailure report as JSON.
//
// Observability (README "Observability"): --metrics-out writes the
// MetricsRegistry JSON dump, --prometheus-out the same registry in
// Prometheus text format, and --trace-out a Chrome-trace/Perfetto JSON.
// --serve-metrics=PORT starts the embedded scrape server (obs/server.h)
// on 127.0.0.1:PORT for the duration of the run — /metrics, /healthz,
// /statusz, /tracez against the *live* registry; PORT 0 picks an
// ephemeral port, printed on startup. --serve-linger-ms keeps the server
// (and process) up that long after the run so short corpora can still be
// scraped externally; shutdown drains the listener either way.
// --corpus-label=NAME labels this run's metric series with corpus="NAME";
// with --per-query and a metrics sink attached, per-task counters are
// additionally published into query_id-labeled series.
//
// Push telemetry + persistence (README "Observability"): --statsd pushes
// statsd/DogStatsD lines over UDP to HOST:PORT on a background flusher
// (counter deltas; guaranteed final flush at exit), --push-jsonl appends
// OTLP-shaped JSON lines per flush to PATH, --push-interval-ms sets the
// flush cadence (default 1000). --journal=DIR appends one JSONL run
// record (summary, peak memory, quarantine digest) to DIR/journal.jsonl
// at run end, loads prior records at startup, and seeds the circuit
// breaker from the most recent matching record; --auto-budget (requires
// --journal) sets the per-task byte budget from the p99 of prior runs'
// peak memory unless --max-bytes was given explicitly. Journal runs
// meter per-task memory even without a budget, so history accumulates.
// Under isolate/retry policies an open breaker fast-fails admission and
// is reported truthfully (incl. HTTP 503) by /healthz.
//
// Checkpoint & resume (README "Checkpoint & resume"): --checkpoint=DIR
// makes the run durable — every task's terminal outcome is fsync'd to
// DIR/checkpoint.jsonl and every pruned output atomically committed to
// DIR/out/task-<i>.xml. --resume=DIR picks up an interrupted checkpoint:
// settled tasks are skipped (committed outputs re-verified by size +
// content hash first) and the interrupted run's summary is folded into
// the final one, so the resumed totals match an uninterrupted run.
// Resume refuses (exit 9) if the corpus, workload, projectors, or
// output-shaping options changed. Quarantined tasks stay quarantined on
// resume unless --resume-retry-quarantined re-admits them. SIGINT or
// SIGTERM triggers a graceful drain: no new tasks start, in-flight tasks
// get --drain-ms (default 10000) to finish, telemetry and the journal
// still flush, and the process exits 8 (a second signal hard-kills).
// --watchdog-factor=F (requires --deadline-ms) arms a watchdog that
// cancels and quarantines tasks wedged past F x the deadline budget.
//
// Exit codes: 0 success; 1 bad flag or usage; 2 pipeline failure;
// 3 missing/unreadable input file; 4 empty corpus; 5 setup (DTD or
// projector inference) failure; 6 telemetry/report write failure;
// 7 scrape server failed to start (e.g. port in use); 8 run drained
// after SIGINT/SIGTERM (partial run; resume with --resume);
// 9 --resume binding mismatch (checkpoint does not match this run).

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit.h"
#include "common/fault.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/push.h"
#include "obs/server.h"
#include "obs/trace.h"
#include "projection/checkpoint.h"
#include "projection/pipeline.h"
#include "xmark/corpus.h"
#include "xmark/xmark_dtd.h"

namespace {

using namespace xmlproj;

constexpr int kExitUsage = 1;
constexpr int kExitPipelineFailure = 2;
constexpr int kExitInputFile = 3;
constexpr int kExitEmptyCorpus = 4;
constexpr int kExitSetupFailure = 5;
constexpr int kExitTelemetryWrite = 6;
constexpr int kExitServeFailure = 7;
constexpr int kExitDrained = 8;
constexpr int kExitResumeMismatch = 9;

// Graceful-drain signal plumbing. The first SIGINT/SIGTERM requests a
// drain (the pipeline polls g_stop); a second signal hard-exits — the
// operator asked twice, the drain is not working.
std::atomic<bool> g_stop{false};
volatile std::sig_atomic_t g_signals = 0;

void HandleStopSignal(int /*signum*/) {
  if (g_signals != 0) std::_Exit(130);
  g_signals = 1;
  g_stop.store(true, std::memory_order_relaxed);
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: parallel_prune_tool [--docs=N] [--scale=S] [--threads=T]\n"
      "                           [--validate] [--per-query] [--sweep]\n"
      "                           [--input=PATH ...]\n"
      "                           [--intra-doc-threads=K] [--chunk-bytes=N]\n"
      "                           [--policy=failfast|isolate|retry]\n"
      "                           [--retries=N] [--max-bytes=N]\n"
      "                           [--deadline-ms=N] [--degrade]\n"
      "                           [--failpoints=SPEC] [--failures-out=PATH]\n"
      "                           [--metrics-out=PATH] [--trace-out=PATH]\n"
      "                           [--prometheus-out=PATH]\n"
      "                           [--serve-metrics=PORT]\n"
      "                           [--serve-linger-ms=N]\n"
      "                           [--corpus-label=NAME]\n"
      "                           [--statsd=HOST:PORT]\n"
      "                           [--push-interval-ms=N]\n"
      "                           [--push-jsonl=PATH]\n"
      "                           [--journal=DIR] [--auto-budget]\n"
      "                           [--checkpoint=DIR] [--resume=DIR]\n"
      "                           [--resume-retry-quarantined]\n"
      "                           [--drain-ms=N] [--watchdog-factor=F]\n");
}

// Strict numeric flag parsing: the whole value must consume, no silent
// atoi-style truncation of "4x" to 4.
bool ParseLong(const char* text, long* out) {
  if (*text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseDouble(const char* text, double* out) {
  if (*text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

int BadFlag(const char* flag, const char* value, const char* expected) {
  std::fprintf(stderr, "parallel_prune_tool: bad value '%s' for %s (%s)\n",
               value, flag, expected);
  return kExitUsage;
}

bool ReadInputFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  *out = std::move(buffer).str();
  return true;
}

void AppendJsonEscaped(const std::string& text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// TaskFailure report as JSON, the artifact the CI chaos job uploads.
std::string FailureReportJson(const PipelineRun& run) {
  std::string json = "{\n";
  json += "  \"failed\": " + std::to_string(run.summary.failed) + ",\n";
  json += "  \"degraded\": " + std::to_string(run.summary.degraded) + ",\n";
  json += "  \"retries\": " + std::to_string(run.summary.retries) + ",\n";
  json += "  \"failures\": [";
  for (size_t i = 0; i < run.failures.size(); ++i) {
    const TaskFailure& f = run.failures[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\"task\": " + std::to_string(f.task) + ", \"stage\": \"" +
            f.stage + "\", \"code\": \"" + StatusCodeName(f.status.code()) +
            "\", \"attempts\": " + std::to_string(f.attempts) +
            ", \"peak_bytes\": " + std::to_string(f.peak_bytes) +
            ", \"message\": \"";
    AppendJsonEscaped(f.status.message(), &json);
    json += "\"}";
  }
  json += run.failures.empty() ? "]\n" : "\n  ]\n";
  json += "}\n";
  return json;
}

void PrintFailureReport(const PipelineRun& run) {
  if (run.failures.empty()) return;
  std::printf("\nquarantined tasks (%zu):\n", run.failures.size());
  for (const TaskFailure& f : run.failures) {
    std::printf("  task %-4zu stage=%-9s attempts=%d%s%s  %s\n", f.task,
                f.stage.c_str(), f.attempts,
                f.peak_bytes != 0 ? " peak_bytes=" : "",
                f.peak_bytes != 0 ? std::to_string(f.peak_bytes).c_str() : "",
                f.status.ToString().c_str());
  }
}

double RunOnce(const std::vector<std::string>& corpus, const Dtd& dtd,
               const NameSet& merged, const std::vector<NameSet>& per_query,
               bool use_per_query, const PipelineOptions& options,
               PipelineRun* out) {
  auto results =
      use_per_query
          ? PruneCorpusPerQuery(corpus, dtd, per_query, options)
          : PruneCorpus(corpus, dtd, merged, options);
  if (!results.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", results.status().ToString().c_str());
    std::exit(kExitPipelineFailure);
  }
  *out = std::move(results).value();
  return out->summary.wall_seconds;
}

void PrintSummary(const PipelineSummary& s) {
  std::printf("\ncorpus pruning summary (Table 1 quantities):\n");
  std::printf("  tasks completed      %zu\n", s.tasks);
  if (s.failed != 0 || s.degraded != 0 || s.retries != 0) {
    std::printf("  quarantined          %zu\n", s.failed);
    std::printf("  degraded (identity)  %zu\n", s.degraded);
    std::printf("  retries              %zu\n", s.retries);
  }
  std::printf("  input bytes          %zu (%.2f MB)\n", s.input_bytes,
              s.input_bytes / (1024.0 * 1024.0));
  std::printf("  output bytes         %zu (%.1f%% kept)\n", s.output_bytes,
              100.0 * s.ByteRatio());
  std::printf("  nodes                %zu -> %zu (%.1f%% kept)\n",
              s.input_nodes, s.kept_nodes, 100.0 * s.NodeRatio());
  std::printf("  text bytes           %zu -> %zu\n", s.input_text_bytes,
              s.kept_text_bytes);
  if (s.resumed_skipped != 0) {
    std::printf("  resumed (skipped)    %zu\n", s.resumed_skipped);
  }
  if (s.drained != 0) {
    std::printf("  drained (not run)    %zu\n", s.drained);
  }
  std::printf("  wall seconds         %.4f\n", s.wall_seconds);
}

void PrintStageTable(MetricsRegistry& registry) {
  struct Row {
    const char* label;
    const char* metric;
  };
  const Row rows[] = {
      {"queue-wait", "xmlproj_stage_queue_wait_ns"},
      {"parse", "xmlproj_stage_parse_ns"},
      {"prune", "xmlproj_stage_prune_ns"},
      {"serialize", "xmlproj_stage_serialize_ns"},
      {"task total", "xmlproj_stage_task_ns"},
  };
  std::printf("\nper-task stage latency (ms):\n");
  std::printf("  %-12s %8s %9s %9s %9s\n", "stage", "count", "mean", "p50",
              "p90");
  for (const Row& row : rows) {
    const Histogram* h = registry.GetHistogram(row.metric);
    if (h->Count() == 0) continue;
    std::printf("  %-12s %8llu %9.3f %9.3f %9.3f\n", row.label,
                static_cast<unsigned long long>(h->Count()), h->Mean() / 1e6,
                h->ApproxPercentile(0.5) / 1e6, h->ApproxPercentile(0.9) / 1e6);
  }
  std::printf("thread pool: queue depth peak %lld, busy %.1f ms over %lld "
              "tasks\n",
              static_cast<long long>(
                  registry.GetGauge("xmlproj_pool_queue_depth_peak")->Value()),
              registry.GetCounter("xmlproj_pool_busy_ns_total")->Value() / 1e6,
              static_cast<long long>(
                  registry.GetCounter("xmlproj_pool_tasks_total")->Value()));
}

// Atomic (write-temp-then-rename): a crash or drain mid-write never
// leaves a torn report behind for CI to parse.
bool DumpToFile(const char* what, const std::string& path,
                const std::string& content) {
  std::string error;
  if (!AtomicWriteTextFile(path, content, /*fsync_file=*/false, &error)) {
    std::fprintf(stderr, "cannot write %s file: %s\n", what, error.c_str());
    return false;
  }
  std::printf("wrote %s (%s)\n", path.c_str(), what);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long docs = 8;
  double scale = 0.002;
  long threads = 0;  // hardware (explicit --threads must be >= 1)
  long intra_doc_threads = 1;
  long chunk_bytes = 0;  // 0 = library default
  bool validate = false;
  bool per_query = false;
  bool sweep = false;
  std::vector<std::string> input_paths;
  ErrorPolicy policy = ErrorPolicy::kFailFast;
  long retries = 3;
  long max_bytes = 0;
  long deadline_ms = 0;
  bool degrade = false;
  std::string failpoints;
  std::string failures_out;
  std::string metrics_out;
  std::string prometheus_out;
  std::string trace_out;
  bool serve = false;
  long serve_port = 0;
  long serve_linger_ms = 0;
  std::string corpus_label;
  std::string statsd_target;
  long push_interval_ms = 1000;
  std::string push_jsonl;
  std::string journal_dir;
  bool auto_budget = false;
  bool max_bytes_explicit = false;
  std::string checkpoint_dir;
  std::string resume_dir;
  bool resume_retry_quarantined = false;
  long drain_ms = 10000;
  double watchdog_factor = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--docs=", 7) == 0) {
      if (!ParseLong(arg + 7, &docs) || docs < 0) {
        return BadFlag("--docs", arg + 7, "expected an integer >= 0");
      }
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      if (!ParseDouble(arg + 8, &scale) || scale <= 0) {
        return BadFlag("--scale", arg + 8, "expected a number > 0");
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      // Strict: 0 or negative is a usage error, not "use all cores".
      if (!ParseLong(arg + 10, &threads) || threads < 1) {
        return BadFlag("--threads", arg + 10, "expected an integer >= 1");
      }
    } else if (std::strncmp(arg, "--intra-doc-threads=", 20) == 0) {
      if (!ParseLong(arg + 20, &intra_doc_threads) || intra_doc_threads < 1) {
        return BadFlag("--intra-doc-threads", arg + 20,
                       "expected an integer >= 1");
      }
    } else if (std::strncmp(arg, "--chunk-bytes=", 14) == 0) {
      if (!ParseLong(arg + 14, &chunk_bytes) || chunk_bytes < 1) {
        return BadFlag("--chunk-bytes", arg + 14, "expected an integer >= 1");
      }
    } else if (std::strcmp(arg, "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(arg, "--per-query") == 0) {
      per_query = true;
    } else if (std::strcmp(arg, "--sweep") == 0) {
      sweep = true;
    } else if (std::strncmp(arg, "--input=", 8) == 0) {
      if (arg[8] == '\0') {
        return BadFlag("--input", "", "expected a file path");
      }
      input_paths.emplace_back(arg + 8);
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      const char* value = arg + 9;
      if (std::strcmp(value, "failfast") == 0) {
        policy = ErrorPolicy::kFailFast;
      } else if (std::strcmp(value, "isolate") == 0) {
        policy = ErrorPolicy::kIsolate;
      } else if (std::strcmp(value, "retry") == 0) {
        policy = ErrorPolicy::kRetry;
      } else {
        return BadFlag("--policy", value,
                       "expected failfast, isolate, or retry");
      }
    } else if (std::strncmp(arg, "--retries=", 10) == 0) {
      if (!ParseLong(arg + 10, &retries) || retries < 1) {
        return BadFlag("--retries", arg + 10, "expected an integer >= 1");
      }
    } else if (std::strncmp(arg, "--max-bytes=", 12) == 0) {
      if (!ParseLong(arg + 12, &max_bytes) || max_bytes < 0) {
        return BadFlag("--max-bytes", arg + 12, "expected an integer >= 0");
      }
      max_bytes_explicit = true;
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      if (!ParseLong(arg + 14, &deadline_ms) || deadline_ms < 0) {
        return BadFlag("--deadline-ms", arg + 14, "expected an integer >= 0");
      }
    } else if (std::strcmp(arg, "--degrade") == 0) {
      degrade = true;
    } else if (std::strncmp(arg, "--failpoints=", 13) == 0) {
      failpoints = arg + 13;
    } else if (std::strncmp(arg, "--failures-out=", 15) == 0) {
      failures_out = arg + 15;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--prometheus-out=", 17) == 0) {
      prometheus_out = arg + 17;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else if (std::strncmp(arg, "--serve-metrics=", 16) == 0) {
      // 0 = ephemeral port (printed on startup).
      if (!ParseLong(arg + 16, &serve_port) || serve_port < 0 ||
          serve_port > 65535) {
        return BadFlag("--serve-metrics", arg + 16,
                       "expected a port number 0..65535");
      }
      serve = true;
    } else if (std::strncmp(arg, "--serve-linger-ms=", 18) == 0) {
      if (!ParseLong(arg + 18, &serve_linger_ms) || serve_linger_ms < 0) {
        return BadFlag("--serve-linger-ms", arg + 18,
                       "expected an integer >= 0");
      }
    } else if (std::strncmp(arg, "--corpus-label=", 15) == 0) {
      if (arg[15] == '\0') {
        return BadFlag("--corpus-label", "", "expected a label value");
      }
      corpus_label = arg + 15;
    } else if (std::strncmp(arg, "--statsd=", 9) == 0) {
      // Shape-checked here (strict flags), resolved when the sink opens.
      const char* value = arg + 9;
      const char* colon = std::strrchr(value, ':');
      if (value[0] == '\0' || colon == nullptr || colon == value ||
          colon[1] == '\0') {
        return BadFlag("--statsd", value, "expected HOST:PORT");
      }
      statsd_target = value;
    } else if (std::strncmp(arg, "--push-interval-ms=", 19) == 0) {
      if (!ParseLong(arg + 19, &push_interval_ms) || push_interval_ms < 1) {
        return BadFlag("--push-interval-ms", arg + 19,
                       "expected an integer >= 1");
      }
    } else if (std::strncmp(arg, "--push-jsonl=", 13) == 0) {
      if (arg[13] == '\0') {
        return BadFlag("--push-jsonl", "", "expected a file path");
      }
      push_jsonl = arg + 13;
    } else if (std::strncmp(arg, "--journal=", 10) == 0) {
      if (arg[10] == '\0') {
        return BadFlag("--journal", "", "expected a directory path");
      }
      journal_dir = arg + 10;
    } else if (std::strcmp(arg, "--auto-budget") == 0) {
      auto_budget = true;
    } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      if (arg[13] == '\0') {
        return BadFlag("--checkpoint", "", "expected a directory path");
      }
      checkpoint_dir = arg + 13;
    } else if (std::strncmp(arg, "--resume=", 9) == 0) {
      if (arg[9] == '\0') {
        return BadFlag("--resume", "", "expected a directory path");
      }
      resume_dir = arg + 9;
    } else if (std::strcmp(arg, "--resume-retry-quarantined") == 0) {
      resume_retry_quarantined = true;
    } else if (std::strncmp(arg, "--drain-ms=", 11) == 0) {
      if (!ParseLong(arg + 11, &drain_ms) || drain_ms < 0) {
        return BadFlag("--drain-ms", arg + 11, "expected an integer >= 0");
      }
    } else if (std::strncmp(arg, "--watchdog-factor=", 18) == 0) {
      if (!ParseDouble(arg + 18, &watchdog_factor) || watchdog_factor <= 0) {
        return BadFlag("--watchdog-factor", arg + 18,
                       "expected a number > 0");
      }
    } else {
      std::fprintf(stderr, "parallel_prune_tool: unknown flag '%s'\n", arg);
      PrintUsage();
      return kExitUsage;
    }
  }
  if (auto_budget && journal_dir.empty()) {
    std::fprintf(stderr, "parallel_prune_tool: --auto-budget requires "
                         "--journal=DIR (it tunes from journal history)\n");
    return kExitUsage;
  }
  if (!checkpoint_dir.empty() && !resume_dir.empty()) {
    std::fprintf(stderr, "parallel_prune_tool: --checkpoint and --resume "
                         "are mutually exclusive (resume appends to the "
                         "existing checkpoint)\n");
    return kExitUsage;
  }
  if ((!checkpoint_dir.empty() || !resume_dir.empty()) && sweep) {
    std::fprintf(stderr, "parallel_prune_tool: --sweep re-runs the corpus "
                         "per thread count and cannot be checkpointed\n");
    return kExitUsage;
  }
  if (resume_retry_quarantined && resume_dir.empty()) {
    std::fprintf(stderr, "parallel_prune_tool: --resume-retry-quarantined "
                         "requires --resume=DIR\n");
    return kExitUsage;
  }
  if (watchdog_factor > 0 && deadline_ms <= 0) {
    std::fprintf(stderr, "parallel_prune_tool: --watchdog-factor requires "
                         "--deadline-ms (the limit is factor x deadline)\n");
    return kExitUsage;
  }
  if (threads <= 0) {
    threads = static_cast<long>(
        std::max(1u, std::thread::hardware_concurrency()));
  }

  // Fault injector: --failpoints wins; otherwise honor XMLPROJ_FAILPOINTS.
  FaultInjector flag_injector;
  FaultInjector* fault = nullptr;
  if (!failpoints.empty()) {
    Status armed = flag_injector.ArmFromSpec(failpoints);
    if (!armed.ok()) {
      std::fprintf(stderr, "parallel_prune_tool: bad --failpoints spec: %s\n",
                   armed.ToString().c_str());
      return kExitUsage;
    }
    fault = &flag_injector;
  } else {
    fault = FaultInjector::FromEnv();
  }

  auto dtd = LoadXMarkDtd();
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD: %s\n", dtd.status().ToString().c_str());
    return kExitSetupFailure;
  }

  std::vector<std::string> corpus;
  size_t in_bytes = 0;
  if (!input_paths.empty()) {
    for (const std::string& path : input_paths) {
      std::string text;
      if (!ReadInputFile(path, &text)) {
        std::fprintf(stderr,
                     "parallel_prune_tool: cannot read input file '%s'\n",
                     path.c_str());
        return kExitInputFile;
      }
      corpus.push_back(std::move(text));
    }
    in_bytes = CorpusBytes(corpus);
    std::printf("corpus: %zu input files, %.2f MB total\n", corpus.size(),
                in_bytes / (1024.0 * 1024.0));
  } else {
    XMarkCorpusOptions corpus_options;
    corpus_options.documents = static_cast<int>(docs);
    corpus_options.scale = scale;
    corpus = GenerateXMarkCorpus(corpus_options);
    in_bytes = CorpusBytes(corpus);
    std::printf("corpus: %ld XMark documents, %.2f MB total\n", docs,
                in_bytes / (1024.0 * 1024.0));
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "parallel_prune_tool: the corpus is empty "
                         "(use --docs=N or --input=PATH)\n");
    return kExitEmptyCorpus;
  }

  auto merged = WorkloadProjector(*dtd, XMarkDashboardWorkload());
  auto per_query_projectors =
      WorkloadProjectors(*dtd, XMarkDashboardWorkload());
  if (!merged.ok() || !per_query_projectors.ok()) {
    std::fprintf(stderr, "projector inference failed\n");
    return kExitSetupFailure;
  }
  std::printf("workload: %zu queries, merged projector keeps %zu/%zu names"
              "%s%s\n",
              XMarkDashboardWorkload().size(), merged->Count(),
              dtd->name_count(), per_query ? ", per-query fan-out" : "",
              validate ? ", validating" : "");
  size_t tasks =
      per_query ? corpus.size() * per_query_projectors->size() : corpus.size();

  const bool push = !statsd_target.empty() || !push_jsonl.empty();
  const bool instrument = !metrics_out.empty() || !prometheus_out.empty() ||
                          !trace_out.empty() || serve ||
                          !corpus_label.empty() || push ||
                          !journal_dir.empty();
  MetricsRegistry registry;
  TraceCollector trace;
  PipelineOptions options;
  options.validate = validate;
  options.policy = policy;
  options.retry.max_attempts = static_cast<int>(retries);
  options.budget.max_bytes = static_cast<size_t>(max_bytes);
  options.budget.deadline_ms = static_cast<uint64_t>(deadline_ms);
  options.degrade_on_invalid = degrade;
  options.fault = fault;
  options.intra_doc.threads = static_cast<int>(intra_doc_threads);
  if (chunk_bytes > 0) {
    options.intra_doc.chunk_bytes = static_cast<size_t>(chunk_bytes);
  }
  if (instrument) {
    options.metrics = &registry;
    if (!trace_out.empty() || serve) options.trace = &trace;
    options.corpus_label = corpus_label;
    // The multi-query fan-out slices its counters per query_id whenever
    // a live scrape or metric dump could observe them.
    options.label_queries = per_query;
    RegisterBuildInfo(&registry);
  }

  // Journal history: loaded before the run so the breaker can be seeded
  // from the last run's outcome and --auto-budget can tune the byte cap
  // from the p99 of prior peaks.
  std::vector<RunRecord> history;
  if (!journal_dir.empty()) {
    size_t skipped = 0;
    std::string error;
    if (!RunJournal::Load(journal_dir, &history, &skipped, &error)) {
      std::fprintf(stderr, "parallel_prune_tool: --journal load failed: %s\n",
                   error.c_str());
      return kExitTelemetryWrite;
    }
    std::printf("journal: loaded %zu prior run(s) from %s",
                history.size(), RunJournal::PathFor(journal_dir).c_str());
    if (skipped > 0) std::printf(" (%zu corrupt line(s) skipped)", skipped);
    std::printf("\n");
    // Per-task memory is what the journal tunes budgets from, so meter it
    // even when this run carries no explicit cap.
    options.meter_memory = true;
  }
  if (auto_budget) {
    BudgetSuggestion suggestion = SuggestBudgets(history, corpus_label);
    if (max_bytes_explicit) {
      std::printf("auto-budget: --max-bytes=%ld set explicitly, keeping it"
                  " (journal suggestion: %llu bytes over %zu run(s))\n",
                  max_bytes,
                  static_cast<unsigned long long>(
                      suggestion.suggested_max_bytes),
                  suggestion.runs);
    } else if (suggestion.runs == 0) {
      std::printf("auto-budget: no prior peak history for this corpus,"
                  " running without a byte budget\n");
    } else {
      options.budget.max_bytes = suggestion.suggested_max_bytes;
      std::printf("auto-budget: p99 peak %llu bytes over %zu run(s)"
                  " -> max-bytes=%llu\n",
                  static_cast<unsigned long long>(suggestion.p99_peak_bytes),
                  suggestion.runs,
                  static_cast<unsigned long long>(
                      suggestion.suggested_max_bytes));
    }
  }

  // Circuit breaker: admission control for kIsolate runs, seeded from
  // the most recent journal record for this corpus so a crash-looping
  // deployment restarts open instead of re-melting.
  CircuitBreakerOptions breaker_options;
  if (instrument) breaker_options.metrics = &registry;
  CircuitBreaker breaker(breaker_options);
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (!corpus_label.empty() && it->corpus != corpus_label) continue;
    // RunRecord::tasks counts completed tasks; failures live in `failed`.
    breaker.Seed(it->tasks, it->failed);
    if (breaker.state() != CircuitState::kClosed) {
      std::printf("circuit: seeded %s from run %s (%llu failed of %llu)\n",
                  CircuitStateName(breaker.state()), it->run_id.c_str(),
                  static_cast<unsigned long long>(it->failed),
                  static_cast<unsigned long long>(it->tasks + it->failed));
    }
    break;
  }
  options.breaker = &breaker;

  // Checkpoint / resume: bind the checkpoint to the corpus, workload,
  // projectors, and the output-shaping options *after* auto-budget has
  // settled the byte cap (the budget is part of the fingerprint).
  const bool durable = !checkpoint_dir.empty() || !resume_dir.empty();
  const std::string workload_name =
      per_query ? "xmark-dashboard-per-query" : "xmark-dashboard-merged";
  RunCheckpoint checkpoint;
  ResumePlan resume_plan;
  if (durable) {
    std::span<const NameSet> bound_projectors =
        per_query ? std::span<const NameSet>(*per_query_projectors)
                  : std::span<const NameSet>(&*merged, 1);
    CheckpointBinding binding = ComputeCorpusBinding(
        corpus, bound_projectors, options, workload_name);
    if (!resume_dir.empty()) {
      resume_plan = PlanResume(resume_dir, binding, resume_retry_quarantined);
      if (!resume_plan.resumable) {
        std::fprintf(stderr, "parallel_prune_tool: cannot resume %s: %s\n",
                     resume_dir.c_str(), resume_plan.mismatch.c_str());
        return kExitResumeMismatch;
      }
      Status opened = checkpoint.OpenForAppend(resume_dir);
      if (!opened.ok()) {
        std::fprintf(stderr, "parallel_prune_tool: --resume failed: %s\n",
                     opened.ToString().c_str());
        return kExitTelemetryWrite;
      }
      std::printf("resume: run %s settled %zu task(s) (%zu completed, %zu "
                  "quarantined carried%s)",
                  resume_plan.run_id.c_str(),
                  resume_plan.skipped_completed +
                      resume_plan.skipped_quarantined,
                  resume_plan.skipped_completed,
                  resume_plan.skipped_quarantined,
                  resume_retry_quarantined ? "" : "; --resume-retry-"
                                                  "quarantined re-admits");
      if (resume_plan.retry_quarantined > 0) {
        std::printf(", %zu quarantined re-admitted",
                    resume_plan.retry_quarantined);
      }
      if (resume_plan.invalidated > 0) {
        std::printf(", %zu invalidated output(s) re-run",
                    resume_plan.invalidated);
      }
      if (resume_plan.torn_lines > 0) {
        std::printf(", %zu torn line(s) skipped", resume_plan.torn_lines);
      }
      std::printf("\n");
      options.resume = &resume_plan;
    } else {
      CheckpointHeader header;
      header.run_id = GenerateRunId();
      header.started_unix_ms = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      header.binding = binding;
      Status created = checkpoint.Create(checkpoint_dir, header);
      if (!created.ok()) {
        std::fprintf(stderr, "parallel_prune_tool: --checkpoint failed: %s\n",
                     created.ToString().c_str());
        return kExitTelemetryWrite;
      }
      std::printf("checkpoint: run %s -> %s\n", header.run_id.c_str(),
                  RunCheckpoint::PathFor(checkpoint_dir).c_str());
    }
    options.checkpoint = &checkpoint;
  }

  // Graceful drain: SIGINT/SIGTERM stop task admission; in-flight tasks
  // get --drain-ms to finish, then telemetry and the journal still flush.
  options.stop = &g_stop;
  options.drain_ms = static_cast<uint64_t>(drain_ms);
  options.watchdog_factor = watchdog_factor;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  // Push sinks: a background flusher snapshots the registry on an
  // interval and ships counter deltas / gauge levels to statsd and/or a
  // JSONL file; Stop() guarantees one final flush after the run.
  StatsdSink statsd_sink;
  JsonlFileSink jsonl_sink;
  std::vector<PushSink*> push_sinks;
  if (!statsd_target.empty()) {
    std::string error;
    if (!statsd_sink.Open(statsd_target, &error)) {
      std::fprintf(stderr, "parallel_prune_tool: --statsd failed: %s\n",
                   error.c_str());
      return kExitUsage;
    }
    push_sinks.push_back(&statsd_sink);
  }
  if (!push_jsonl.empty()) {
    std::string error;
    if (!jsonl_sink.Open(push_jsonl, &error)) {
      std::fprintf(stderr, "parallel_prune_tool: --push-jsonl failed: %s\n",
                   error.c_str());
      return kExitTelemetryWrite;
    }
    push_sinks.push_back(&jsonl_sink);
  }
  PushFlusher flusher;
  if (!push_sinks.empty()) {
    PushFlusherOptions flush_options;
    flush_options.registry = &registry;
    flush_options.sinks = push_sinks;
    flush_options.interval_ms = static_cast<uint64_t>(push_interval_ms);
    std::string error;
    if (!flusher.Start(flush_options, &error)) {
      std::fprintf(stderr, "parallel_prune_tool: push flusher failed: %s\n",
                   error.c_str());
      return kExitTelemetryWrite;
    }
    std::printf("pushing metrics every %ld ms to %zu sink(s)\n",
                push_interval_ms, push_sinks.size());
    std::fflush(stdout);
  }

  // Scrape server: started before the run so /metrics, /statusz and
  // /healthz observe the pipeline live, not post-hoc.
  ObsServer server;
  if (serve) {
    ObsServerOptions serve_options;
    serve_options.port = static_cast<uint16_t>(serve_port);
    serve_options.registry = &registry;
    serve_options.trace = &trace;
    serve_options.circuit_state = [&breaker] { return breaker.state_int(); };
    std::string error;
    if (!server.Start(serve_options, &error)) {
      std::fprintf(stderr, "parallel_prune_tool: --serve-metrics failed: %s\n",
                   error.c_str());
      return kExitServeFailure;
    }
    std::printf("serving metrics on http://127.0.0.1:%u/metrics "
                "(also /metrics.json /healthz /statusz /tracez)\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
  }

  const uint64_t run_start_unix_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  PipelineRun run;
  if (sweep) {
    double base = 0;
    for (long t = 1; t <= threads; t = t < threads ? std::min(t * 2, threads)
                                                   : threads + 1) {
      options.num_threads = static_cast<int>(t);
      double seconds = RunOnce(corpus, *dtd, *merged, *per_query_projectors,
                               per_query, options, &run);
      if (t == 1) base = seconds;
      std::printf("  threads=%-2ld  %8.1f ms  %7.1f MB/s  speedup %.2fx\n", t,
                  seconds * 1e3, in_bytes / seconds / (1024.0 * 1024.0),
                  base / seconds);
    }
  } else {
    options.num_threads = static_cast<int>(threads);
    double seconds = RunOnce(corpus, *dtd, *merged, *per_query_projectors,
                             per_query, options, &run);
    std::printf("%zu tasks on %ld threads: %.1f ms, %.1f MB/s\n", tasks,
                threads, seconds * 1e3,
                in_bytes / seconds / (1024.0 * 1024.0));
  }
  PrintSummary(run.summary);
  PrintFailureReport(run);
  if (instrument) PrintStageTable(registry);

  bool io_ok = true;
  if (!failures_out.empty()) {
    io_ok = DumpToFile("failure report", failures_out, FailureReportJson(run))
            && io_ok;
  }
  if (!metrics_out.empty()) {
    std::string json;
    AppendMetricsJson(registry, &json);
    io_ok = DumpToFile("metrics JSON", metrics_out, json) && io_ok;
  }
  if (!prometheus_out.empty()) {
    std::string text;
    AppendPrometheusText(registry, &text);
    io_ok = DumpToFile("Prometheus metrics", prometheus_out, text) && io_ok;
  }
  if (!trace_out.empty()) {
    std::string json;
    trace.AppendChromeTraceJson(&json);
    io_ok = DumpToFile("Chrome trace", trace_out, json) && io_ok;
  }

  // Journal append: one record per process run (a sweep journals its
  // final configuration) so the next invocation can seed the breaker and
  // --auto-budget from it.
  if (!journal_dir.empty()) {
    RunRecord record;
    record.run_id = GenerateRunId();
    record.corpus = corpus_label;
    record.start_unix_ms = run_start_unix_ms;
    record.end_unix_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    record.wall_seconds = run.summary.wall_seconds;
    record.tasks = run.summary.tasks;
    record.failed = run.summary.failed;
    record.degraded = run.summary.degraded;
    record.retries = run.summary.retries;
    record.input_bytes = run.summary.input_bytes;
    record.output_bytes = run.summary.output_bytes;
    record.peak_memory_bytes = run.summary.max_task_peak_bytes;
    if (!resume_dir.empty()) {
      record.resume_skipped = run.summary.resumed_skipped;
      record.resume_rerun = static_cast<uint64_t>(
          tasks - run.summary.resumed_skipped - run.summary.drained);
    }
    std::map<std::string, uint64_t> stage_counts;
    for (const TaskFailure& failure : run.failures) {
      ++stage_counts[failure.stage];
    }
    for (const char* stage : {"budget", "deadline"}) {
      auto it = stage_counts.find(stage);
      if (it != stage_counts.end()) record.budget_trips += it->second;
    }
    record.quarantine.assign(stage_counts.begin(), stage_counts.end());
    RunJournal journal;
    // A checkpoint-bearing run's journal line must be as durable as the
    // checkpoint it describes.
    journal.set_fsync(durable);
    std::string error;
    if (!journal.Open(journal_dir, &error) ||
        !journal.Append(record, &error)) {
      std::fprintf(stderr, "parallel_prune_tool: journal append failed: %s\n",
                   error.c_str());
      io_ok = false;
    } else {
      std::printf("journal: appended run %s to %s\n", record.run_id.c_str(),
                  journal.path().c_str());
    }
  }

  if (!push_sinks.empty()) {
    flusher.Stop();  // guarantees a final flush of the end-of-run state
    std::printf("push: %llu flush(es), %llu statsd datagram(s),"
                " %llu sink error(s)\n",
                static_cast<unsigned long long>(flusher.flushes()),
                static_cast<unsigned long long>(statsd_sink.datagrams_sent()),
                static_cast<unsigned long long>(flusher.sink_errors()));
  }

  if (serve) {
    // Keep the final registry scrapeable for a bounded window (CI smoke
    // curls after the run), then drain the listener and stop.
    if (serve_linger_ms > 0) {
      std::printf("serving final metrics for %ld ms before shutdown\n",
                  serve_linger_ms);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(serve_linger_ms));
    }
    server.Stop();
    std::printf("metrics server stopped after %llu request(s)\n",
                static_cast<unsigned long long>(server.requests_served()));
  }
  if (!io_ok) return kExitTelemetryWrite;
  if (g_stop.load(std::memory_order_relaxed) || run.summary.drained != 0) {
    std::printf("drained: %zu task(s) not run; resume with --resume=%s\n",
                run.summary.drained,
                checkpoint_dir.empty()
                    ? (resume_dir.empty() ? "DIR" : resume_dir.c_str())
                    : checkpoint_dir.c_str());
    return kExitDrained;
  }
  return 0;
}
