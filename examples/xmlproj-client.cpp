// xmlproj-client: command-line client for the xmlprojd daemon, built on
// the blocking client library (service/client.h). Also a workload/corpus
// utility: `gen` emits XMark documents with the same generator defaults
// as the batch parallel_prune_tool (scale 0.002, seed 20060912 + i), so
// a shell can diff the service's pruned bytes against the batch tool's —
// the parity check the CI service-smoke job runs.
//
//   xmlproj-client gen [--scale=S] [--seed=N] [--doc=I]
//       print XMark document I (generator seed N+I) to stdout
//   xmlproj-client workload-spec --dashboard
//       print the dashboard workload (bids/sellers/cheap/gold) as a
//       POST /workloads spec
//   xmlproj-client register --port=P [--dtd=NAME] [--file=SPEC]
//       register the workload spec (from --file or stdin); prints the
//       response JSON (including the workload id) to stdout
//   xmlproj-client prune --port=P --workload=ID [--validate]
//                  [--max-bytes=N] [--deadline-ms=N] [--file=DOC]
//                  [--traceparent=00-<32hex>-<16hex>-<2hex>]
//       prune the document (from --file or stdin); pruned bytes on
//       stdout, cache disposition on stderr
//   xmlproj-client list --port=P        GET /workloads
//   xmlproj-client health --port=P      GET /healthz
//   xmlproj-client get --port=P PATH    any GET (e.g. /metrics)
//   xmlproj-client dashboard --port=P
//       per-workload request latency: one row per
//       xmlproj_request_duration_seconds series (workload, route,
//       status code, count, p50/p99 in ms) from /metrics.json
//
// Exit codes: 0 success, 1 bad usage, 2 request failed (transport or
// non-2xx; the error is printed to stderr).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/client.h"
#include "xmark/corpus.h"
#include "xmark/queries.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ReadInput(const std::string& file, std::string* out) {
  if (file.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream in(file, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: xmlproj-client "
               "gen|workload-spec|register|prune|list|health|get|dashboard "
               "...\n"
               "(see the file comment in examples/xmlproj-client.cpp)\n");
  return 1;
}

// The RED-series latency dashboard: scans /metrics.json for the
// xmlproj_request_duration_seconds histograms (values are raw
// nanoseconds there — only the Prometheus exposition scales to seconds)
// and prints one row per {workload,route,code} series.
int PrintDashboard(xmlproj::ProjectionClient& client) {
  auto body = client.Get("/metrics.json");
  if (!body.ok()) {
    std::fprintf(stderr, "dashboard failed: %s\n",
                 body.status().ToString().c_str());
    return 2;
  }
  const std::string& json = *body;
  const std::string prefix = "\"xmlproj_request_duration_seconds{";
  std::printf("%-22s %-14s %-5s %10s %12s %12s\n", "workload", "route",
              "code", "count", "p50_ms", "p99_ms");
  size_t at = 0;
  bool any = false;
  while ((at = json.find(prefix, at)) != std::string::npos) {
    size_t key_start = at + prefix.size();
    size_t key_end = json.find("}\"", key_start);
    if (key_end == std::string::npos) break;
    // The series key is JSON-quoted, so embedded label quotes arrive
    // backslash-escaped; undo that before slicing out label values.
    std::string labels;
    for (size_t i = key_start; i < key_end; ++i) {
      if (json[i] == '\\' && i + 1 < key_end) {
        labels.push_back(json[++i]);
        continue;
      }
      labels.push_back(json[i]);
    }
    auto label_value = [&labels](const char* key) {
      std::string needle = std::string(key) + "=\"";
      size_t pos = labels.find(needle);
      if (pos == std::string::npos) return std::string();
      pos += needle.size();
      size_t end = labels.find('"', pos);
      return labels.substr(pos,
                           end == std::string::npos ? end : end - pos);
    };
    // The value object starts right after the key, leading with count
    // then the percentiles, so first-occurrence extraction is exact.
    std::string_view tail(json.data() + key_end,
                          std::min<size_t>(json.size() - key_end, 2048));
    uint64_t count = 0, p50 = 0, p99 = 0;
    xmlproj::ExtractJsonU64Field(tail, "count", &count);
    xmlproj::ExtractJsonU64Field(tail, "p50", &p50);
    xmlproj::ExtractJsonU64Field(tail, "p99", &p99);
    std::printf("%-22s %-14s %-5s %10llu %12.3f %12.3f\n",
                label_value("workload").c_str(), label_value("route").c_str(),
                label_value("code").c_str(),
                static_cast<unsigned long long>(count),
                static_cast<double>(p50) / 1e6,
                static_cast<double>(p99) / 1e6);
    any = true;
    at = key_end;
  }
  if (!any) {
    std::printf("(no xmlproj_request_duration_seconds series yet — "
                "send some requests first)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xmlproj;
  if (argc < 2) return Usage();
  std::string command = argv[1];

  std::string port_str, file, dtd, workload, scale_str = "0.002",
                              seed_str = "20060912", doc_str = "0";
  bool dashboard = false;
  PruneRequestOptions prune_options;
  std::string extra_path;
  for (int i = 2; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      port_str = value;
    } else if (ParseFlag(argv[i], "--file", &value)) {
      file = value;
    } else if (ParseFlag(argv[i], "--dtd", &value)) {
      dtd = value;
    } else if (ParseFlag(argv[i], "--workload", &value)) {
      workload = value;
    } else if (ParseFlag(argv[i], "--scale", &value)) {
      scale_str = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      seed_str = value;
    } else if (ParseFlag(argv[i], "--doc", &value)) {
      doc_str = value;
    } else if (ParseFlag(argv[i], "--max-bytes", &value)) {
      prune_options.max_bytes = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--deadline-ms", &value)) {
      prune_options.deadline_ms =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--traceparent", &value)) {
      prune_options.traceparent = value;
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      prune_options.validate = true;
    } else if (std::strcmp(argv[i], "--dashboard") == 0) {
      dashboard = true;
    } else if (argv[i][0] != '-') {
      extra_path = argv[i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  if (command == "gen") {
    // Matches the batch tool's corpus: document I is generated with
    // seed + I, so `gen --doc=I` equals corpus[I] of a --docs=N run.
    XMarkCorpusOptions options;
    options.documents = 1;
    options.scale = std::atof(scale_str.c_str());
    options.seed = static_cast<uint64_t>(std::atoll(seed_str.c_str())) +
                   static_cast<uint64_t>(std::atoll(doc_str.c_str()));
    std::vector<std::string> corpus = GenerateXMarkCorpus(options);
    std::fwrite(corpus[0].data(), 1, corpus[0].size(), stdout);
    return 0;
  }

  if (command == "workload-spec") {
    if (!dashboard) return Usage();
    std::string spec;
    for (const BenchmarkQuery& query : XMarkDashboardWorkload()) {
      spec += query.id;
      spec += '\t';
      spec += query.language == QueryLanguage::kXQuery ? "xquery" : "xpath";
      spec += '\t';
      spec += query.text;
      spec += '\n';
    }
    std::fwrite(spec.data(), 1, spec.size(), stdout);
    return 0;
  }

  if (port_str.empty()) return Usage();
  ProjectionClientOptions client_options;
  client_options.port = static_cast<uint16_t>(std::atoi(port_str.c_str()));
  ProjectionClient client(client_options);

  if (command == "register") {
    std::string spec;
    if (!ReadInput(file, &spec)) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 1;
    }
    auto registration = client.RegisterWorkload(spec, dtd);
    if (!registration.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   registration.status().ToString().c_str());
      return 2;
    }
    std::fwrite(registration->raw_json.data(), 1,
                registration->raw_json.size(), stdout);
    return 0;
  }

  if (command == "prune") {
    if (workload.empty()) return Usage();
    std::string document;
    if (!ReadInput(file, &document)) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 1;
    }
    auto outcome = client.Prune(workload, document, prune_options);
    if (!outcome.ok()) {
      std::fprintf(stderr, "prune failed: %s\n",
                   outcome.status().ToString().c_str());
      return 2;
    }
    std::fwrite(outcome->output.data(), 1, outcome->output.size(), stdout);
    std::fprintf(stderr, "projector cache: %s\n",
                 outcome->cache_hit ? "hit" : "miss");
    if (!outcome->trace_id.empty()) {
      std::fprintf(stderr, "trace: %s request: %s\n",
                   outcome->trace_id.c_str(), outcome->request_id.c_str());
    }
    return 0;
  }

  if (command == "dashboard") return PrintDashboard(client);

  Result<std::string> body = InternalError("unhandled");
  if (command == "list") {
    body = client.ListWorkloads();
  } else if (command == "health") {
    body = client.Healthz();
  } else if (command == "get") {
    if (extra_path.empty()) return Usage();
    body = client.Get(extra_path);
  } else {
    return Usage();
  }
  if (!body.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", command.c_str(),
                 body.status().ToString().c_str());
    return 2;
  }
  std::fwrite(body->data(), 1, body->size(), stdout);
  return 0;
}
