// xmlprune: a command-line projection tool over real files.
//
// Usage:
//   xmlprune --dtd auction.dtd --root site --xml doc.xml
//       [--xquery] [--out pruned.xml] [--explain] QUERY [QUERY...]
//
// Reads the DTD, memory-maps the document (xml/mmap_source.h), infers
// the union projector for the given queries (XPath by default, XQuery
// with --xquery), prunes in one zero-copy streaming pass — kept byte
// ranges are spliced straight from the mapping (xml/splice.h) — and
// writes the projected document (stdout by default). With --explain it
// also prints the inferred projector and the XPath^l approximations.
//
// Demo without arguments: generates a small XMark file and prunes it for
// an example query.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "dtd/dtd_parser.h"
#include "projection/projection.h"
#include "projection/pruner.h"
#include "xmark/generator.h"
#include "xmark/xmark_dtd.h"
#include "xml/mmap_source.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/splice.h"
#include "xquery/parser.h"
#include "xquery/path_extraction.h"

namespace {

using namespace xmlproj;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "xmlprune: %s\n", status.ToString().c_str());
  return 1;
}

int PruneWith(const Dtd& dtd, std::string_view xml_text,
              const std::vector<std::string>& queries, bool xquery,
              bool explain, const std::string& out_path) {
  NameSet projector(dtd.name_count());
  projector.Add(dtd.root());
  for (const std::string& query : queries) {
    if (xquery) {
      auto parsed = ParseXQuery(query);
      if (!parsed.ok()) return Fail(parsed.status());
      auto one = InferProjectorForQuery(dtd, **parsed);
      if (!one.ok()) return Fail(one.status());
      projector |= *one;
    } else {
      auto analysis = AnalyzeXPathQuery(dtd, query);
      if (!analysis.ok()) return Fail(analysis.status());
      if (explain) {
        std::fprintf(stderr, "approx(%s) = %s\n", query.c_str(),
                     ToString(analysis->approximated).c_str());
      }
      projector |= analysis->projector;
    }
  }
  if (explain) {
    std::fprintf(stderr, "projector (%zu/%zu names): ", projector.Count(),
                 dtd.name_count());
    projector.ForEach([&dtd](NameId n) {
      std::fprintf(stderr, "%s ", dtd.production(n).name.c_str());
    });
    std::fprintf(stderr, "\n");
  }

  std::string pruned_text;
  SplicingSerializingHandler sink(xml_text, &pruned_text);
  StreamingPruner pruner(dtd, projector, &sink);
  Status status = ParseXmlStream(xml_text, &pruner);
  if (!status.ok()) return Fail(status);
  sink.Finish();

  std::fprintf(stderr,
               "xmlprune: %zu -> %zu bytes (%.1f%%), %zu -> %zu nodes\n",
               xml_text.size(), pruned_text.size(),
               xml_text.empty()
                   ? 0.0
                   : 100.0 * pruned_text.size() / xml_text.size(),
               pruner.stats().input_nodes, pruner.stats().kept_nodes);
  if (out_path.empty()) {
    std::fwrite(pruned_text.data(), 1, pruned_text.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    out << pruned_text;
    if (!out) {
      std::fprintf(stderr, "xmlprune: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
  }
  return 0;
}

int Demo() {
  std::fprintf(stderr,
               "xmlprune: no arguments; running the built-in demo "
               "(--help for usage)\n");
  auto dtd = LoadXMarkDtd();
  if (!dtd.ok()) return Fail(dtd.status());
  XMarkOptions options;
  options.scale = 0.002;
  std::string xml_text = GenerateXMarkText(options);
  return PruneWith(*dtd, xml_text,
                   {"/site/people/person[address/city = 'Rome']/name"},
                   /*xquery=*/false, /*explain=*/true, "");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dtd_path;
  std::string root = "site";
  std::string xml_path;
  std::string out_path;
  bool xquery = false;
  bool explain = false;
  std::vector<std::string> queries;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xmlprune: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--dtd") {
      dtd_path = next("--dtd");
    } else if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--xml") {
      xml_path = next("--xml");
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--xquery") {
      xquery = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: xmlprune --dtd FILE --root NAME --xml FILE|- "
                   "[--xquery] [--out FILE] [--explain] QUERY...\n");
      return 0;
    } else {
      queries.push_back(arg);
    }
  }

  if (dtd_path.empty() && xml_path.empty() && queries.empty()) {
    return Demo();
  }
  if (dtd_path.empty() || xml_path.empty() || queries.empty()) {
    std::fprintf(stderr,
                 "xmlprune: need --dtd, --xml and at least one query "
                 "(--help for usage)\n");
    return 1;
  }

  std::string dtd_text;
  if (!ReadFile(dtd_path, &dtd_text)) {
    std::fprintf(stderr, "xmlprune: cannot read %s\n", dtd_path.c_str());
    return 1;
  }
  // The document is memory-mapped (read-loop fallback for pipes), so the
  // parser and splice sink run straight off the page cache with no copy.
  auto source = xml_path == "-" ? MmapSource::FromStdin()
                                : MmapSource::OpenFile(xml_path);
  if (!source.ok()) return Fail(source.status());
  auto dtd = ParseDtd(dtd_text, root);
  if (!dtd.ok()) return Fail(dtd.status());
  return PruneWith(*dtd, source->view(), queries, xquery, explain, out_path);
}
