// Prune-while-parsing: the paper's "no overhead" deployment (§1.2, §6).
//
// The StreamingPruner is a SAX filter with O(depth) state — "a single
// bufferless one-pass traversal". Composed with the parser it prunes the
// document as it is read, so the unprojected DOM never exists in memory;
// composed with a serializer it acts as an external pruning tool (file in,
// smaller file out).
//
// Run: ./build/examples/streaming_prune

#include <cstdio>

#include "projection/projection.h"
#include "projection/pruner.h"
#include "xmark/generator.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

int main() {
  using namespace xmlproj;

  auto dtd = LoadXMarkDtd();
  XMarkOptions options;
  options.scale = 0.01;
  std::string xml_text = GenerateXMarkText(options);
  std::printf("input document: %.2f KB of XML text\n",
              xml_text.size() / 1024.0);

  const char* query = "/site/people/person[address/city]/name";
  auto analysis = AnalyzeXPathQuery(*dtd, query);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", query);

  // Deployment 1: external tool — stream text in, pruned text out.
  // Parser -> StreamingPruner -> SerializingHandler. No DOM at all.
  {
    std::string pruned_text;
    SerializingHandler out(&pruned_text);
    StreamingPruner pruner(*dtd, analysis->projector, &out);
    Status status = ParseXmlStream(xml_text, &pruner);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf(
        "file-to-file pruning: %.2f KB -> %.2f KB (%.1f%%), kept %zu of "
        "%zu nodes, peak state = open-element stack only\n",
        xml_text.size() / 1024.0, pruned_text.size() / 1024.0,
        100.0 * pruned_text.size() / xml_text.size(),
        pruner.stats().kept_nodes, pruner.stats().input_nodes);
  }

  // Deployment 2: query-engine loader — parse-and-prune into a DOM the
  // engine then queries (the unpruned document is never materialized).
  {
    PruneStats stats;
    auto pruned_doc = ParseAndPrune(xml_text, *dtd, analysis->projector,
                                    &stats);
    if (!pruned_doc.ok()) {
      std::fprintf(stderr, "%s\n",
                   pruned_doc.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "loader pruning: pruned DOM is %.2f KB in memory (%zu nodes); a "
        "full DOM of the input would hold %zu nodes\n",
        pruned_doc->MemoryBytes() / 1024.0,
        pruned_doc->content_node_count(), stats.input_nodes);
  }
  return 0;
}
