// xquery_shell: run XPath/XQuery queries against an XML file — the
// "main-memory query engine" the paper optimizes, exposed as a tool.
// With --dtd it also demonstrates the paper end to end: it prints the
// inferred projector, prunes, runs the query on both versions, and
// reports the observed time/memory gains.
//
// Usage:
//   xquery_shell --xml FILE [--dtd FILE --root NAME] [--xpath] QUERY...
//
// Without arguments it runs a demo against a generated XMark document.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "projection/pruner.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xmark/workbench.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"

namespace {

using namespace xmlproj;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int RunQueries(const Document& doc, const Dtd* dtd,
               const Interpretation* interp,
               const std::vector<std::string>& queries,
               QueryLanguage language) {
  for (const std::string& text : queries) {
    BenchmarkQuery query{"cli", language, text, ""};
    auto run = RunBenchmarkQuery(query, doc);
    if (!run.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", run->serialized.c_str());
    std::fprintf(stderr,
                 "-- %zu item(s), %.2f ms, %.2f MB engine memory\n",
                 run->result_items, run->seconds * 1000,
                 run->memory_bytes / (1024.0 * 1024.0));

    if (dtd != nullptr && interp != nullptr) {
      auto projector = AnalyzeBenchmarkQuery(query, *dtd);
      if (!projector.ok()) {
        std::fprintf(stderr, "analysis error: %s\n",
                     projector.status().ToString().c_str());
        return 1;
      }
      auto pruned = PruneDocument(doc, *interp, *projector);
      if (!pruned.ok()) return 1;
      auto run_pruned = RunBenchmarkQuery(query, *pruned);
      if (!run_pruned.ok()) return 1;
      bool same = run_pruned->serialized == run->serialized;
      std::fprintf(
          stderr,
          "-- with projection: %zu/%zu grammar names kept, %.2f ms, "
          "%.2f MB, results %s\n",
          projector->Count(), dtd->name_count(),
          run_pruned->seconds * 1000,
          run_pruned->memory_bytes / (1024.0 * 1024.0),
          same ? "identical" : "DIFFER (bug!)");
      if (!same) return 1;
    }
  }
  return 0;
}

int Demo() {
  std::fprintf(stderr, "xquery_shell: running the built-in demo "
                       "(--help for usage)\n");
  Dtd dtd = std::move(LoadXMarkDtd()).value();
  XMarkOptions options;
  options.scale = 0.002;
  Document doc = std::move(GenerateXMark(options)).value();
  Interpretation interp = std::move(Interpret(doc, dtd)).value();
  return RunQueries(
      doc, &dtd, &interp,
      {"for $p in /site/people/person[address] "
       "return <who city=\"{$p/address/city/text()}\">"
       "{$p/name/text()}</who>"},
      QueryLanguage::kXQuery);
}

}  // namespace

int main(int argc, char** argv) {
  std::string xml_path;
  std::string dtd_path;
  std::string root = "site";
  bool xpath = false;
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xquery_shell: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--xml") {
      xml_path = next("--xml");
    } else if (arg == "--dtd") {
      dtd_path = next("--dtd");
    } else if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--xpath") {
      xpath = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: xquery_shell --xml FILE [--dtd FILE --root "
                   "NAME] [--xpath] QUERY...\n");
      return 0;
    } else {
      queries.push_back(arg);
    }
  }
  if (xml_path.empty() && queries.empty()) return Demo();
  if (xml_path.empty() || queries.empty()) {
    std::fprintf(stderr,
                 "xquery_shell: need --xml and at least one query\n");
    return 1;
  }

  std::string xml_text;
  if (!ReadFile(xml_path, &xml_text)) {
    std::fprintf(stderr, "cannot read %s\n", xml_path.c_str());
    return 1;
  }
  auto doc = ParseXml(xml_text);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }

  QueryLanguage language =
      xpath ? QueryLanguage::kXPath : QueryLanguage::kXQuery;
  if (dtd_path.empty()) {
    return RunQueries(*doc, nullptr, nullptr, queries, language);
  }
  std::string dtd_text;
  if (!ReadFile(dtd_path, &dtd_text)) {
    std::fprintf(stderr, "cannot read %s\n", dtd_path.c_str());
    return 1;
  }
  auto dtd = ParseDtd(dtd_text, root);
  if (!dtd.ok()) {
    std::fprintf(stderr, "%s\n", dtd.status().ToString().c_str());
    return 1;
  }
  auto interp = Validate(*doc, *dtd);
  if (!interp.ok()) {
    std::fprintf(stderr, "%s\n", interp.status().ToString().c_str());
    return 1;
  }
  return RunQueries(*doc, &*dtd, &*interp, queries, language);
}
