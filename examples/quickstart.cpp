// Quickstart: the whole pipeline on a small document.
//
//   1. parse a DTD and an XML document, validate;
//   2. infer the type projector for an XPath query (static analysis);
//   3. prune the document with the projector;
//   4. run the query on both documents and check the results agree.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "projection/projection.h"
#include "projection/pruner.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace {

constexpr char kDtd[] = R"(
  <!ELEMENT library (book*)>
  <!ELEMENT book (title, author+, year?)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT year (#PCDATA)>
)";

constexpr char kXml[] =
    "<library>"
    "<book><title>Inferno</title><author>Dante</author>"
    "<year>1313</year></book>"
    "<book><title>Decameron</title><author>Boccaccio</author>"
    "<year>1353</year></book>"
    "<book><title>Canzoniere</title><author>Petrarca</author></book>"
    "</library>";

constexpr char kQuery[] = "/library/book[author = 'Dante']/title";

}  // namespace

int main() {
  using namespace xmlproj;

  // 1. Parse DTD + document, validate (this also yields the
  //    interpretation ℑ mapping nodes to grammar names).
  auto dtd = ParseDtd(kDtd, "library");
  if (!dtd.ok()) {
    std::fprintf(stderr, "%s\n", dtd.status().ToString().c_str());
    return 1;
  }
  auto doc = ParseXml(kXml);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  auto interp = Validate(*doc, *dtd);
  if (!interp.ok()) {
    std::fprintf(stderr, "%s\n", interp.status().ToString().c_str());
    return 1;
  }
  std::printf("document:  %s\n", SerializeDocument(*doc).c_str());

  // 2. Static analysis: query text -> XPath^l approximation -> projector.
  auto analysis = AnalyzeXPathQuery(*dtd, kQuery);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("query:     %s\n", kQuery);
  std::printf("approx:    %s\n", ToString(analysis->approximated).c_str());
  std::printf("projector: {");
  bool first = true;
  analysis->projector.ForEach([&](NameId n) {
    std::printf("%s%s", first ? "" : ", ",
                dtd->production(n).name.c_str());
    first = false;
  });
  std::printf("}\n");

  // 3. Prune. (Year elements and non-author books vanish.)
  auto pruned = PruneDocument(*doc, *interp, analysis->projector);
  if (!pruned.ok()) {
    std::fprintf(stderr, "%s\n", pruned.status().ToString().c_str());
    return 1;
  }
  std::printf("pruned:    %s\n", SerializeDocument(*pruned).c_str());

  // 4. Evaluate the original query on both documents.
  auto path = ParseXPath(kQuery);
  XPathEvaluator eval_orig(*doc);
  XPathEvaluator eval_pruned(*pruned);
  auto on_orig = eval_orig.EvaluateFromRoot(*path);
  auto on_pruned = eval_pruned.EvaluateFromRoot(*path);
  if (!on_orig.ok() || !on_pruned.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }
  std::string orig_text;
  for (const XNode& n : *on_orig) {
    orig_text += SerializeSubtree(*doc, n.node);
  }
  std::string pruned_text;
  for (const XNode& n : *on_pruned) {
    pruned_text += SerializeSubtree(*pruned, n.node);
  }
  std::printf("result (original): %s\n", orig_text.c_str());
  std::printf("result (pruned):   %s\n", pruned_text.c_str());
  std::printf(orig_text == pruned_text
                  ? "results agree: pruning is transparent to the query\n"
                  : "BUG: results differ!\n");
  return orig_text == pruned_text ? 0 : 1;
}
